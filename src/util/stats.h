// Streaming statistics and latency histograms for instrumentation.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <limits>
#include <vector>

namespace e2lshos::util {

/// \brief Welford streaming mean/variance with min/max.
class RunningStats {
 public:
  void Add(double x) {
    ++n_;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(n_);
    m2_ += delta * (x - mean_);
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
    sum_ += x;
  }

  void Merge(const RunningStats& other) {
    if (other.n_ == 0) return;
    if (n_ == 0) {
      *this = other;
      return;
    }
    const double delta = other.mean_ - mean_;
    const uint64_t total = n_ + other.n_;
    m2_ += other.m2_ + delta * delta * static_cast<double>(n_) *
                           static_cast<double>(other.n_) / static_cast<double>(total);
    mean_ = (mean_ * static_cast<double>(n_) +
             other.mean_ * static_cast<double>(other.n_)) /
            static_cast<double>(total);
    n_ = total;
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
    sum_ += other.sum_;
  }

  uint64_t count() const { return n_; }
  double mean() const { return n_ ? mean_ : 0.0; }
  double sum() const { return sum_; }
  double variance() const { return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0; }
  double stddev() const { return std::sqrt(variance()); }
  double min() const { return n_ ? min_ : 0.0; }
  double max() const { return n_ ? max_ : 0.0; }

 private:
  uint64_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double sum_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

/// \brief Log-scaled latency histogram (nanoseconds), HdrHistogram-lite.
///
/// Buckets are arranged as 64 power-of-two ranges each split into
/// `kSubBuckets` linear sub-buckets, giving ~1.6% relative error.
class LatencyHistogram {
 public:
  static constexpr int kSubBuckets = 64;

  void Add(uint64_t ns) {
    ++count_;
    sum_ += ns;
    max_ = std::max(max_, ns);
    min_ = std::min(min_, ns);
    buckets_[Index(ns)]++;
  }

  void Merge(const LatencyHistogram& other) {
    count_ += other.count_;
    sum_ += other.sum_;
    max_ = std::max(max_, other.max_);
    min_ = std::min(min_, other.min_);
    for (size_t i = 0; i < buckets_.size(); ++i) buckets_[i] += other.buckets_[i];
  }

  uint64_t count() const { return count_; }
  double mean() const { return count_ ? static_cast<double>(sum_) / count_ : 0.0; }
  uint64_t max() const { return count_ ? max_ : 0; }
  uint64_t min() const { return count_ ? min_ : 0; }

  /// Value at quantile q in [0,1]; upper bound of the containing bucket,
  /// clamped to the recorded max so no reported percentile ever exceeds
  /// the worst observed latency.
  uint64_t Quantile(double q) const {
    if (count_ == 0) return 0;
    const uint64_t target =
        static_cast<uint64_t>(q * static_cast<double>(count_ - 1)) + 1;
    uint64_t seen = 0;
    for (size_t i = 0; i < buckets_.size(); ++i) {
      seen += buckets_[i];
      if (seen >= target) return std::min(UpperBound(i), max_);
    }
    return max_;
  }

  void Reset() {
    count_ = 0;
    sum_ = 0;
    max_ = 0;
    min_ = std::numeric_limits<uint64_t>::max();
    std::fill(buckets_.begin(), buckets_.end(), 0);
  }

 private:
  static size_t Index(uint64_t ns) {
    if (ns < kSubBuckets) return static_cast<size_t>(ns);
    const int msb = 63 - __builtin_clzll(ns);
    const int shift = msb - 6;  // log2(kSubBuckets)
    const uint64_t sub = (ns >> shift) & (kSubBuckets - 1);
    return static_cast<size_t>((msb - 5) * kSubBuckets + sub);
  }

  static uint64_t UpperBound(size_t index) {
    const size_t range = index / kSubBuckets;
    const size_t sub = index % kSubBuckets;
    if (range == 0) return sub;
    const int shift = static_cast<int>(range) - 1;
    return ((static_cast<uint64_t>(kSubBuckets) + sub + 1) << shift) - 1;
  }

  uint64_t count_ = 0;
  uint64_t sum_ = 0;
  uint64_t max_ = 0;
  uint64_t min_ = std::numeric_limits<uint64_t>::max();
  std::vector<uint64_t> buckets_ = std::vector<uint64_t>(64 * kSubBuckets, 0);
};

/// \brief Event rate over a sliding time window, for "sustained QPS".
///
/// The window is a ring of `slots` fixed-width time slots; recording an
/// event bumps the slot covering `now_ns`, lazily resetting slots whose
/// previous occupant has aged out. The reported rate covers the last
/// `slots - 1` full slots plus the elapsed part of the current one, so a
/// burst that ended more than one window ago contributes nothing.
/// Not thread-safe; callers serialize (see core::StreamingServer).
class SlidingWindowRate {
 public:
  explicit SlidingWindowRate(uint64_t window_ns = 1000000000ULL,
                             uint32_t slots = 16)
      : slot_ns_(std::max<uint64_t>(1, window_ns / std::max(1u, slots))),
        slots_(std::max(1u, slots)) {}

  void Record(uint64_t now_ns, uint64_t count = 1) {
    if (first_ns_ == 0 || now_ns < first_ns_) first_ns_ = now_ns;
    Slot& s = slots_[SlotIndex(now_ns)];
    const uint64_t epoch = now_ns / slot_ns_;
    if (s.epoch != epoch) {
      s.epoch = epoch;
      s.count = 0;
    }
    s.count += count;
  }

  /// Events-per-second over the window ending at `now_ns`. Before a full
  /// window has elapsed since the first event, the denominator is the
  /// time actually covered, so a fresh recorder doesn't understate the
  /// rate.
  double RatePerSec(uint64_t now_ns) const {
    if (first_ns_ == 0) return 0.0;
    const uint64_t now_epoch = now_ns / slot_ns_;
    uint64_t events = 0;
    for (const Slot& s : slots_) {
      if (s.epoch <= now_epoch && now_epoch - s.epoch < slots_.size()) {
        events += s.count;
      }
    }
    uint64_t covered_ns =
        (slots_.size() - 1) * slot_ns_ + (now_ns % slot_ns_) + 1;
    if (now_ns >= first_ns_) {
      covered_ns = std::min<uint64_t>(covered_ns, now_ns - first_ns_ + 1);
    }
    return static_cast<double>(events) * 1e9 / static_cast<double>(covered_ns);
  }

  /// Merge another recorder with the same window geometry (per-shard
  /// recorders share wall-clock epochs, so equal epochs are the same
  /// time slot).
  void Merge(const SlidingWindowRate& other) {
    for (size_t i = 0; i < slots_.size() && i < other.slots_.size(); ++i) {
      if (other.slots_[i].epoch == 0 && other.slots_[i].count == 0) continue;
      if (slots_[i].epoch == other.slots_[i].epoch) {
        slots_[i].count += other.slots_[i].count;
      } else if (other.slots_[i].epoch > slots_[i].epoch) {
        slots_[i] = other.slots_[i];
      }
    }
    if (first_ns_ == 0 || (other.first_ns_ != 0 && other.first_ns_ < first_ns_)) {
      first_ns_ = other.first_ns_;
    }
  }

  void Reset() {
    std::fill(slots_.begin(), slots_.end(), Slot{});
    first_ns_ = 0;
  }

  uint64_t slot_ns() const { return slot_ns_; }

 private:
  struct Slot {
    uint64_t epoch = 0;  ///< now_ns / slot_ns at last write.
    uint64_t count = 0;
  };

  size_t SlotIndex(uint64_t now_ns) const {
    return static_cast<size_t>((now_ns / slot_ns_) % slots_.size());
  }

  uint64_t slot_ns_;
  std::vector<Slot> slots_;
  uint64_t first_ns_ = 0;
};

/// \brief Streaming latency recorder for a serving front-end: per-query
/// enqueue-to-completion latency quantiles (fixed-bucket histogram) plus
/// sustained completion rate over a sliding window.
///
/// Not thread-safe; the serving layer keeps one recorder per shard
/// worker and merges snapshots (Merge) on demand.
class LatencyRecorder {
 public:
  void Record(uint64_t latency_ns, uint64_t completion_now_ns) {
    hist_.Add(latency_ns);
    rate_.Record(completion_now_ns);
  }

  void Merge(const LatencyRecorder& other) {
    hist_.Merge(other.hist_);
    rate_.Merge(other.rate_);
  }

  void Reset() {
    hist_.Reset();
    rate_.Reset();
  }

  uint64_t count() const { return hist_.count(); }
  double mean_ns() const { return hist_.mean(); }
  uint64_t max_ns() const { return hist_.max(); }
  uint64_t p50_ns() const { return hist_.Quantile(0.50); }
  uint64_t p95_ns() const { return hist_.Quantile(0.95); }
  uint64_t p99_ns() const { return hist_.Quantile(0.99); }
  double SustainedQps(uint64_t now_ns) const { return rate_.RatePerSec(now_ns); }

  const LatencyHistogram& histogram() const { return hist_; }

 private:
  LatencyHistogram hist_;
  SlidingWindowRate rate_;
};

/// \brief Least-squares fit of log(y) = alpha * log(x) + beta.
///
/// Used to validate sublinear query-time scaling (Fig. 14): E2LSH(oS)
/// should fit with exponent alpha well below 1, SRS with alpha ~= 1.
struct PowerLawFit {
  double exponent = 0.0;   // alpha
  double prefactor = 0.0;  // exp(beta)
  double r2 = 0.0;         // coefficient of determination in log-log space
};

inline PowerLawFit FitPowerLaw(const std::vector<double>& xs,
                               const std::vector<double>& ys) {
  PowerLawFit fit;
  const size_t n = std::min(xs.size(), ys.size());
  if (n < 2) return fit;
  double sx = 0, sy = 0, sxx = 0, sxy = 0, syy = 0;
  for (size_t i = 0; i < n; ++i) {
    const double lx = std::log(xs[i]);
    const double ly = std::log(ys[i]);
    sx += lx;
    sy += ly;
    sxx += lx * lx;
    sxy += lx * ly;
    syy += ly * ly;
  }
  const double dn = static_cast<double>(n);
  const double denom = dn * sxx - sx * sx;
  if (std::abs(denom) < 1e-12) return fit;
  fit.exponent = (dn * sxy - sx * sy) / denom;
  const double beta = (sy - fit.exponent * sx) / dn;
  fit.prefactor = std::exp(beta);
  const double sse_denom = (dn * sxx - sx * sx) * (dn * syy - sy * sy);
  if (sse_denom > 1e-12) {
    const double r = (dn * sxy - sx * sy) / std::sqrt(sse_denom);
    fit.r2 = r * r;
  }
  return fit;
}

}  // namespace e2lshos::util
