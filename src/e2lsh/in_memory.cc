#include "e2lsh/in_memory.h"

#include <algorithm>
#include <cmath>
#include <unordered_set>

#include "lsh/multi_probe.h"

#include "util/clock.h"
#include "util/distance.h"

namespace e2lshos::e2lsh {

Result<std::unique_ptr<InMemoryE2lsh>> InMemoryE2lsh::Build(
    const data::Dataset& base, const lsh::E2lshParams& params) {
  if (base.n() == 0) return Status::InvalidArgument("empty dataset");
  auto idx = std::make_unique<InMemoryE2lsh>();
  idx->base_ = &base;
  idx->params_ = params;
  idx->family_ = lsh::HashFamily(base.dim(), params);

  const uint32_t num_radii = params.num_radii();
  idx->tables_.resize(static_cast<size_t>(num_radii) * params.L);

  std::vector<std::pair<uint32_t, uint32_t>> pairs(base.n());  // (hash, id)
  for (uint32_t r = 0; r < num_radii; ++r) {
    for (uint32_t l = 0; l < params.L; ++l) {
      const lsh::CompoundHash& g = idx->family_.Get(r, l);
      for (uint64_t i = 0; i < base.n(); ++i) {
        pairs[i] = {g.Hash32(base.Row(i)), static_cast<uint32_t>(i)};
      }
      std::sort(pairs.begin(), pairs.end());

      BucketTable& table = idx->tables_[static_cast<size_t>(r) * params.L + l];
      table.ids.resize(pairs.size());
      uint64_t i = 0;
      while (i < pairs.size()) {
        const uint32_t key = pairs[i].first;
        table.keys.push_back(key);
        table.offsets.push_back(i);
        while (i < pairs.size() && pairs[i].first == key) {
          table.ids[i] = pairs[i].second;
          ++i;
        }
      }
      table.offsets.push_back(pairs.size());
    }
  }
  return idx;
}

std::vector<util::Neighbor> InMemoryE2lsh::Search(
    const float* query, uint32_t k, SearchStats* stats,
    std::vector<uint32_t>* bucket_read_sizes) const {
  const uint64_t start = util::NowNs();
  util::TopK topk(k);
  std::unordered_set<uint32_t> checked;
  SearchStats local;
  const uint32_t d = base_->dim();

  for (uint32_t r = 0; r < params_.num_radii(); ++r) {
    ++local.radii_searched;
    uint64_t checked_in_radius = 0;
    bool draining = false;

    for (uint32_t l = 0; l < params_.L && !draining; ++l) {
      const uint32_t h = family_.Get(r, l).Hash32(query);
      const BucketTable& table = Table(r, l);
      const auto it = std::lower_bound(table.keys.begin(), table.keys.end(), h);
      if (it == table.keys.end() || *it != h) continue;
      const size_t key_idx = static_cast<size_t>(it - table.keys.begin());
      const uint64_t begin = table.offsets[key_idx];
      const uint64_t end = table.offsets[key_idx + 1];

      ++local.buckets_probed;
      uint32_t entries_read = 0;
      for (uint64_t e = begin; e < end && !draining; ++e) {
        ++entries_read;
        ++local.entries_scanned;
        const uint32_t id = table.ids[e];
        if (!checked.insert(id).second) {
          ++local.dup_skips;
          continue;
        }
        const float dist = std::sqrt(util::SquaredL2(base_->Row(id), query, d));
        topk.Push(id, dist);
        ++local.candidates;
        if (++checked_in_radius >= params_.S) draining = true;
      }
      if (bucket_read_sizes != nullptr) bucket_read_sizes->push_back(entries_read);
    }

    const double radius = params_.radii[r];
    if (topk.full() && topk.WorstDist() <= params_.c * radius) break;
  }

  local.wall_ns = util::NowNs() - start;
  if (stats != nullptr) *stats = local;
  return topk.SortedResults();
}

std::vector<util::Neighbor> InMemoryE2lsh::SearchMultiProbe(
    const float* query, uint32_t k, uint32_t num_probes,
    SearchStats* stats) const {
  const uint64_t start = util::NowNs();
  util::TopK topk(k);
  std::unordered_set<uint32_t> checked;
  SearchStats local;
  const uint32_t d = base_->dim();
  const uint32_t m = params_.m;

  std::vector<int32_t> floors(m);
  std::vector<float> residuals(m);
  std::vector<uint32_t> probe_keys;
  std::vector<int8_t> deltas;

  for (uint32_t r = 0; r < params_.num_radii(); ++r) {
    ++local.radii_searched;
    uint64_t checked_in_radius = 0;
    bool draining = false;

    for (uint32_t l = 0; l < params_.L && !draining; ++l) {
      const lsh::CompoundHash& g = family_.Get(r, l);
      g.HashWithResiduals(query, floors.data(), residuals.data());

      probe_keys.clear();
      probe_keys.push_back(lsh::CompoundHash::Fold(floors.data(), m));
      lsh::MultiProbeSequence seq(residuals);
      for (uint32_t t = 0; t < num_probes && seq.Next(&deltas); ++t) {
        probe_keys.push_back(lsh::PerturbedHash32(floors.data(), deltas.data(), m));
      }

      const BucketTable& table = Table(r, l);
      for (const uint32_t key : probe_keys) {
        if (draining) break;
        const auto it = std::lower_bound(table.keys.begin(), table.keys.end(), key);
        if (it == table.keys.end() || *it != key) continue;
        const size_t key_idx = static_cast<size_t>(it - table.keys.begin());
        ++local.buckets_probed;
        for (uint64_t e = table.offsets[key_idx]; e < table.offsets[key_idx + 1];
             ++e) {
          ++local.entries_scanned;
          const uint32_t id = table.ids[e];
          if (!checked.insert(id).second) {
            ++local.dup_skips;
            continue;
          }
          const float dist = std::sqrt(util::SquaredL2(base_->Row(id), query, d));
          topk.Push(id, dist);
          ++local.candidates;
          if (++checked_in_radius >= params_.S) {
            draining = true;
            break;
          }
        }
      }
    }

    const double radius = params_.radii[r];
    if (topk.full() && topk.WorstDist() <= params_.c * radius) break;
  }

  local.wall_ns = util::NowNs() - start;
  if (stats != nullptr) *stats = local;
  return topk.SortedResults();
}

uint64_t InMemoryE2lsh::BucketSize(uint32_t radius_idx, uint32_t l,
                                   uint32_t hash32) const {
  const BucketTable& table = Table(radius_idx, l);
  const auto it = std::lower_bound(table.keys.begin(), table.keys.end(), hash32);
  if (it == table.keys.end() || *it != hash32) return 0;
  const size_t key_idx = static_cast<size_t>(it - table.keys.begin());
  return table.offsets[key_idx + 1] - table.offsets[key_idx];
}

InMemoryE2lsh::BatchResult InMemoryE2lsh::SearchBatch(const data::Dataset& queries,
                                                      uint32_t k) const {
  BatchResult out;
  out.results.resize(queries.n());
  out.stats.resize(queries.n());
  const uint64_t start = util::NowNs();
  for (uint64_t q = 0; q < queries.n(); ++q) {
    out.results[q] = Search(queries.Row(q), k, &out.stats[q]);
  }
  out.wall_ns = util::NowNs() - start;
  return out;
}

double InMemoryE2lsh::BatchResult::MeanRadii() const {
  if (stats.empty()) return 0.0;
  uint64_t total = 0;
  for (const auto& s : stats) total += s.radii_searched;
  return static_cast<double>(total) / static_cast<double>(stats.size());
}

double InMemoryE2lsh::BatchResult::MeanIosInfiniteBlock() const {
  if (stats.empty()) return 0.0;
  uint64_t total = 0;
  for (const auto& s : stats) total += s.IoCountInfiniteBlock();
  return static_cast<double>(total) / static_cast<double>(stats.size());
}

double InMemoryE2lsh::BatchResult::QueriesPerSecond() const {
  if (wall_ns == 0) return 0.0;
  return static_cast<double>(results.size()) * 1e9 / static_cast<double>(wall_ns);
}

uint64_t InMemoryE2lsh::IndexMemoryBytes() const {
  uint64_t bytes = family_.MemoryBytes();
  for (const auto& t : tables_) {
    bytes += t.keys.size() * sizeof(uint32_t) + t.offsets.size() * sizeof(uint64_t) +
             t.ids.size() * sizeof(uint32_t);
  }
  return bytes;
}

}  // namespace e2lshos::e2lsh
