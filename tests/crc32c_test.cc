// Tests for util/crc32c.h (the checksum under format v3) and the block
// CRC helpers in core/layout.h: known-answer vectors pin the polynomial
// and bit order, incremental extension must match one-shot hashing, and
// a stamped block must verify until any byte — header or payload —
// flips.
#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "core/layout.h"
#include "util/crc32c.h"

namespace e2lshos {
namespace {

TEST(Crc32c, KnownAnswerVectors) {
  // The canonical CRC32C (Castagnoli) check value.
  const char* check = "123456789";
  EXPECT_EQ(util::Crc32c(check, 9), 0xE3069283u);
  // Empty input.
  EXPECT_EQ(util::Crc32c(nullptr, 0), 0x00000000u);
  // RFC 7143 (iSCSI) test patterns: 32 bytes of zeros / ones.
  std::vector<uint8_t> buf(32, 0x00);
  EXPECT_EQ(util::Crc32c(buf.data(), buf.size()), 0x8A9136AAu);
  std::fill(buf.begin(), buf.end(), 0xFF);
  EXPECT_EQ(util::Crc32c(buf.data(), buf.size()), 0x62A8AB43u);
}

TEST(Crc32c, IncrementalExtendMatchesOneShot) {
  std::vector<uint8_t> data(1023);
  for (size_t i = 0; i < data.size(); ++i) {
    data[i] = static_cast<uint8_t>(i * 131 + 7);
  }
  const uint32_t oneshot = util::Crc32c(data.data(), data.size());
  // Split at every alignment-interesting boundary.
  for (const size_t split : {0ul, 1ul, 3ul, 4ul, 511ul, 512ul, 1022ul}) {
    uint32_t state = util::Crc32cExtend(0xFFFFFFFFu, data.data(), split);
    state = util::Crc32cExtend(state, data.data() + split,
                               data.size() - split);
    EXPECT_EQ(state ^ 0xFFFFFFFFu, oneshot) << "split at " << split;
  }
}

TEST(Crc32c, BlockStampAndVerify) {
  std::vector<uint8_t> block(core::kDefaultBlockBytes);
  for (size_t i = 0; i < block.size(); ++i) {
    block[i] = static_cast<uint8_t>(i ^ (i >> 3));
  }
  core::StampBlockCrc(block.data(), block.size());
  EXPECT_TRUE(core::VerifyBlockCrc(block.data(), block.size()));

  // Any single flipped byte — header field, CRC field itself, payload,
  // last byte — must break verification.
  for (const size_t pos : {0ul, 5ul, static_cast<size_t>(core::kBlockCrcOffset),
                           64ul, block.size() - 1}) {
    block[pos] ^= 0x40;
    EXPECT_FALSE(core::VerifyBlockCrc(block.data(), block.size()))
        << "flip at byte " << pos;
    block[pos] ^= 0x40;
    EXPECT_TRUE(core::VerifyBlockCrc(block.data(), block.size()));
  }
}

TEST(Crc32c, StampIsIdempotent) {
  std::vector<uint8_t> block(1024, 0xA5);
  core::StampBlockCrc(block.data(), block.size());
  std::vector<uint8_t> again = block;
  core::StampBlockCrc(again.data(), again.size());
  EXPECT_EQ(block, again);
}

}  // namespace
}  // namespace e2lshos
