// Reproduces Table 6: index size and runtime memory usage of E2LSHoS vs
// SRS. E2LSHoS places the large index on storage and keeps only the
// table addresses / bitmap (+ hash functions) in DRAM, so its runtime
// memory usage — database + small index remainder — is comparable to SRS.
#include "common.h"

using namespace e2lshos;

int main(int argc, char** argv) {
  const auto args = bench::Args::Parse(argc, argv);

  bench::PrintHeader(
      "Table 6: index size and runtime memory usage",
      {"Dataset", "E2LSHoS index (storage)", "E2LSHoS mem usage",
       "(index mem)", "SRS mem usage", "(index mem)", "in-mem E2LSH index"});

  for (const auto& spec : data::PaperDatasets()) {
    if (!args.dataset.empty() && spec.name != args.dataset) continue;
    auto w = bench::MakeWorkload(spec, args.EffectiveN(spec), args.queries, 1);
    if (!w.ok()) continue;

    auto dev = storage::MemoryDevice::Create(8ULL << 30);
    if (!dev.ok()) continue;
    auto idx = core::IndexBuilder::Build(w->gen.base, w->params, dev->get());
    if (!idx.ok()) {
      std::fprintf(stderr, "%s: %s\n", spec.name.c_str(),
                   idx.status().ToString().c_str());
      continue;
    }
    auto srs = baselines::Srs::Build(w->gen.base, {});
    if (!srs.ok()) continue;
    auto mem = e2lsh::InMemoryE2lsh::Build(w->gen.base, w->params);
    if (!mem.ok()) continue;

    const auto sizes = (*idx)->sizes();
    const uint64_t db = w->gen.base.SizeBytes();
    bench::PrintRow({spec.name, bench::FmtBytes(sizes.storage_bytes),
                     bench::FmtBytes(db + sizes.dram_index_bytes),
                     "(" + bench::FmtBytes(sizes.dram_index_bytes) + ")",
                     bench::FmtBytes(db + (*srs)->IndexMemoryBytes()),
                     "(" + bench::FmtBytes((*srs)->IndexMemoryBytes()) + ")",
                     bench::FmtBytes((*mem)->IndexMemoryBytes())});
  }
  std::printf(
      "\nExpected shape (paper): the on-storage index dwarfs both methods' "
      "DRAM\nfootprints; E2LSHoS memory usage is close to SRS (database "
      "dominates); the\nlast column is what in-memory E2LSH would have to "
      "hold in DRAM instead.\n");
  return 0;
}
