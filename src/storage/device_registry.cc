#include "storage/device_registry.h"

#include <cstdlib>

#include "storage/cache_device.h"
#include "storage/faulty_device.h"
#include "storage/file_device.h"
#include "storage/retry_device.h"
#include "storage/interface_model.h"
#include "storage/memory_device.h"
#include "storage/striped_device.h"
#include "storage/uring_device.h"
#include "util/parse.h"

namespace e2lshos::storage {

DeviceModel GetDeviceModel(DeviceKind kind) {
  DeviceModel m;
  switch (kind) {
    case DeviceKind::kCssd:
      // QD1: 7.2 kIOPS -> 138.9 us; QD128: 273 kIOPS -> 38 units.
      m.name = "cSSD";
      m.service_time_ns = 138900;
      m.parallel_units = 38;
      m.capacity_bytes = 2ULL << 40;  // 2 TB
      break;
    case DeviceKind::kEssd:
      // QD1: 27.6 kIOPS -> 36.2 us; QD128: 1400 kIOPS -> 51 units.
      m.name = "eSSD";
      m.service_time_ns = 36230;
      m.parallel_units = 51;
      m.capacity_bytes = 800ULL << 30;  // 800 GB
      break;
    case DeviceKind::kXlfdd:
      // QD1: 132.3 kIOPS -> 7.56 us; QD128: 3860 kIOPS -> 29 units.
      m.name = "XLFDD";
      m.service_time_ns = 7560;
      m.parallel_units = 29;
      m.capacity_bytes = 520ULL << 30;  // 520 GB
      break;
    case DeviceKind::kHdd:
      // QD1: 0.21 kIOPS -> 4.76 ms; NCQ gives a modest boost at depth.
      m.name = "HDD";
      m.service_time_ns = 4760000;
      m.parallel_units = 3;
      m.capacity_bytes = 10ULL << 40;  // 10 TB
      break;
  }
  m.queue_capacity = 1024;
  return m;
}

std::vector<std::pair<DeviceKind, std::string>> AllDeviceKinds() {
  return {{DeviceKind::kCssd, "cSSD"},
          {DeviceKind::kEssd, "eSSD"},
          {DeviceKind::kXlfdd, "XLFDD"},
          {DeviceKind::kHdd, "HDD"}};
}

Result<std::unique_ptr<SimulatedDevice>> MakeDevice(DeviceKind kind) {
  return SimulatedDevice::Create(GetDeviceModel(kind));
}

std::string StorageConfig::DisplayName() const {
  return GetDeviceModel(kind).name + " x " + std::to_string(count);
}

std::vector<StorageConfig> Table5Configs() {
  return {{DeviceKind::kCssd, 1},
          {DeviceKind::kCssd, 4},
          {DeviceKind::kEssd, 1},
          {DeviceKind::kEssd, 8},
          {DeviceKind::kXlfdd, 12}};
}

bool FileBackendAvailable(FileBackendKind kind) {
  return kind == FileBackendKind::kFile || UringDevice::Available();
}

namespace {

FileDevice::Options ToFileOptions(const FileBackendOptions& options) {
  FileDevice::Options opt;
  opt.capacity = options.capacity;
  opt.queue_capacity = options.queue_capacity;
  opt.direct_io = options.direct_io;
  opt.io_threads = options.io_threads;
  return opt;
}

UringDevice::Options ToUringOptions(const FileBackendOptions& options) {
  UringDevice::Options opt;
  opt.capacity = options.capacity;
  opt.queue_capacity = options.queue_capacity;
  opt.direct_io = options.direct_io;
  opt.sqpoll = options.sqpoll;
  return opt;
}

}  // namespace

Result<std::unique_ptr<BlockDevice>> CreateFileBackend(
    FileBackendKind kind, const std::string& path,
    const FileBackendOptions& options) {
  if (kind == FileBackendKind::kUring) {
    E2_ASSIGN_OR_RETURN(auto dev,
                        UringDevice::Create(path, ToUringOptions(options)));
    return std::unique_ptr<BlockDevice>(std::move(dev));
  }
  E2_ASSIGN_OR_RETURN(auto dev, FileDevice::Create(path, ToFileOptions(options)));
  return std::unique_ptr<BlockDevice>(std::move(dev));
}

Result<std::unique_ptr<BlockDevice>> OpenFileBackend(
    FileBackendKind kind, const std::string& path,
    const FileBackendOptions& options) {
  if (kind == FileBackendKind::kUring) {
    E2_ASSIGN_OR_RETURN(auto dev,
                        UringDevice::Open(path, ToUringOptions(options)));
    return std::unique_ptr<BlockDevice>(std::move(dev));
  }
  E2_ASSIGN_OR_RETURN(auto dev, FileDevice::Open(path, ToFileOptions(options)));
  return std::unique_ptr<BlockDevice>(std::move(dev));
}

// ---------------------------------------------------------------------------
// Device URIs.
// ---------------------------------------------------------------------------

namespace {

Result<DeviceKind> ParseSimKind(const std::string& name) {
  if (name == "cssd") return DeviceKind::kCssd;
  if (name == "essd") return DeviceKind::kEssd;
  if (name == "xlfdd") return DeviceKind::kXlfdd;
  if (name == "hdd") return DeviceKind::kHdd;
  return Status::InvalidArgument("unknown simulated device '" + name +
                                 "' (expected cssd|essd|xlfdd|hdd)");
}

const char* SimKindName(DeviceKind kind) {
  switch (kind) {
    case DeviceKind::kCssd: return "cssd";
    case DeviceKind::kEssd: return "essd";
    case DeviceKind::kXlfdd: return "xlfdd";
    case DeviceKind::kHdd: return "hdd";
  }
  return "cssd";
}

Result<InterfaceKind> ParseIfaceName(const std::string& name) {
  if (name == "io_uring") return InterfaceKind::kIoUring;
  if (name == "spdk") return InterfaceKind::kSpdk;
  if (name == "xlfdd") return InterfaceKind::kXlfdd;
  if (name == "mmap") return InterfaceKind::kMmapSync;
  return Status::InvalidArgument("unknown interface model '" + name +
                                 "' (expected io_uring|spdk|xlfdd|mmap)");
}

/// Strict whole-string unsigned parse (util::ParseU64: no sign, no
/// whitespace, no trailing garbage, overflow is an error).
Result<uint64_t> ParseUriU64(const std::string& key, const std::string& v) {
  auto parsed = util::ParseU64(v);
  if (!parsed.ok()) {
    return Status::InvalidArgument("device URI key '" + key +
                                   "': " + parsed.status().message());
  }
  return parsed;
}

/// `capacity=` values: integer bytes with an optional k/m/g/t suffix.
Result<uint64_t> ParseUriSize(const std::string& key, const std::string& v) {
  uint32_t shift = 0;
  std::string digits = v;
  if (!digits.empty()) {
    switch (digits.back()) {
      case 'k': case 'K': shift = 10; break;
      case 'm': case 'M': shift = 20; break;
      case 'g': case 'G': shift = 30; break;
      case 't': case 'T': shift = 40; break;
      default: break;
    }
    if (shift != 0) digits.pop_back();
  }
  E2_ASSIGN_OR_RETURN(const uint64_t raw, ParseUriU64(key, digits));
  if (shift != 0 && raw > (UINT64_MAX >> shift)) {
    return Status::InvalidArgument("device URI '" + key + "=" + v +
                                   "' overflows");
  }
  return raw << shift;
}

Result<bool> ParseUriBool(const std::string& key, const std::string& v) {
  if (v == "1") return true;
  if (v == "0") return false;
  return Status::InvalidArgument("device URI key '" + key +
                                 "' expects 0 or 1, got '" + v + "'");
}

/// Strict whole-string probability parse for `fault=` sub-keys.
Result<double> ParseUriProb(const std::string& key, const std::string& v) {
  char* end = nullptr;
  const double p = v.empty() ? -1.0 : std::strtod(v.c_str(), &end);
  if (v.empty() || end != v.c_str() + v.size() || !(p >= 0.0) || p > 1.0) {
    return Status::InvalidArgument("device URI key '" + key +
                                   "' expects a probability in [0,1], got '" +
                                   v + "'");
  }
  return p;
}

std::string FormatProb(double p) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.12g", p);
  return std::string(buf);
}

/// Split `value` at commas into `name:value` items (the sub-key syntax
/// shared by `fault=` and `retry=`).
Result<std::vector<std::pair<std::string, std::string>>> SplitSubKeys(
    const std::string& outer_key, const std::string& value,
    bool first_is_bare) {
  std::vector<std::pair<std::string, std::string>> items;
  size_t pos = 0;
  bool first = true;
  while (pos <= value.size() && !(pos == value.size() && !value.empty())) {
    size_t comma = value.find(',', pos);
    if (comma == std::string::npos) comma = value.size();
    const std::string item = value.substr(pos, comma - pos);
    pos = comma + 1;
    if (first && first_is_bare) {
      items.emplace_back("", item);
      first = false;
      if (pos > value.size()) break;
      continue;
    }
    first = false;
    const size_t colon = item.find(':');
    if (item.empty() || colon == std::string::npos || colon == 0) {
      return Status::InvalidArgument("malformed " + outer_key + "= sub-key '" +
                                     item + "' (expected name:value)");
    }
    items.emplace_back(item.substr(0, colon), item.substr(colon + 1));
    if (pos > value.size()) break;
  }
  return items;
}

Status ParseFaultSpec(const std::string& value, DeviceUri* out) {
  if (value.empty()) {
    return Status::InvalidArgument(
        "fault= needs at least one sub-key "
        "(submit:P, complete:P, corrupt:P, stall:USEC, stallp:P, seed:N)");
  }
  E2_ASSIGN_OR_RETURN(const auto items,
                      SplitSubKeys("fault", value, /*first_is_bare=*/false));
  bool stallp_set = false;
  for (const auto& [name, v] : items) {
    if (name == "submit") {
      E2_ASSIGN_OR_RETURN(out->fault_submit, ParseUriProb("fault.submit", v));
    } else if (name == "complete") {
      E2_ASSIGN_OR_RETURN(out->fault_complete,
                          ParseUriProb("fault.complete", v));
    } else if (name == "corrupt") {
      E2_ASSIGN_OR_RETURN(out->fault_corrupt, ParseUriProb("fault.corrupt", v));
    } else if (name == "stall") {
      E2_ASSIGN_OR_RETURN(out->fault_stall_usec, ParseUriU64("fault.stall", v));
    } else if (name == "stallp") {
      E2_ASSIGN_OR_RETURN(out->fault_stall_rate,
                          ParseUriProb("fault.stallp", v));
      stallp_set = true;
    } else if (name == "seed") {
      E2_ASSIGN_OR_RETURN(out->fault_seed, ParseUriU64("fault.seed", v));
    } else {
      return Status::InvalidArgument(
          "unknown fault= sub-key '" + name +
          "' (known: submit, complete, corrupt, stall, stallp, seed)");
    }
  }
  if (out->fault_stall_usec > 0 && !stallp_set) out->fault_stall_rate = 0.01;
  out->fault = true;
  return Status::OK();
}

Status ParseRetrySpec(const std::string& value, DeviceUri* out) {
  E2_ASSIGN_OR_RETURN(const auto items,
                      SplitSubKeys("retry", value, /*first_is_bare=*/true));
  for (const auto& [name, v] : items) {
    if (name.empty()) {
      E2_ASSIGN_OR_RETURN(const uint64_t attempts,
                          ParseUriU64("retry", v));
      if (attempts == 0 || attempts > 100) {
        return Status::InvalidArgument("retry= attempts must be 1..100");
      }
      out->retry_attempts = static_cast<uint32_t>(attempts);
    } else if (name == "backoff") {
      E2_ASSIGN_OR_RETURN(out->retry_backoff_usec,
                          ParseUriU64("retry.backoff", v));
    } else if (name == "deadline") {
      E2_ASSIGN_OR_RETURN(out->retry_deadline_usec,
                          ParseUriU64("retry.deadline", v));
    } else {
      return Status::InvalidArgument("unknown retry= sub-key '" + name +
                                     "' (known: backoff, deadline)");
    }
  }
  return Status::OK();
}

}  // namespace

const char* DeviceUri::scheme_name() const {
  switch (scheme) {
    case Scheme::kMem: return "mem";
    case Scheme::kSim: return "sim";
    case Scheme::kFile: return "file";
    case Scheme::kUring: return "uring";
  }
  return "mem";
}

std::string DeviceUri::ToString() const {
  std::string out = std::string(scheme_name()) + ":";
  if (scheme == Scheme::kSim) {
    out += SimKindName(sim_kind);
    if (sim_count != 1) out += "*" + std::to_string(sim_count);
  } else if (scheme == Scheme::kFile || scheme == Scheme::kUring) {
    out += path;
  }
  std::string query;
  auto add = [&query](const std::string& kv) {
    query += (query.empty() ? "?" : "&") + kv;
  };
  if (direct_io) add("direct=1");
  if (scheme == Scheme::kFile && io_threads != 4) {
    add("threads=" + std::to_string(io_threads));
  }
  if (sqpoll) add("sqpoll=1");
  if (!iface.empty()) add("iface=" + iface);
  if (queue_capacity != 0) add("queue=" + std::to_string(queue_capacity));
  if (queues != kQueuesAuto) add("queues=" + std::to_string(queues));
  if (fixed_buffers) add("fixed=1");
  if (capacity != 0) add("capacity=" + std::to_string(capacity));
  if (cache_bytes != 0) add("cache=" + std::to_string(cache_bytes));
  if (fault) {
    std::string spec;
    auto addf = [&spec](const std::string& kv) {
      spec += (spec.empty() ? "" : ",") + kv;
    };
    if (fault_submit > 0) addf("submit:" + FormatProb(fault_submit));
    if (fault_complete > 0) addf("complete:" + FormatProb(fault_complete));
    if (fault_corrupt > 0) addf("corrupt:" + FormatProb(fault_corrupt));
    if (fault_stall_usec != 0) addf("stall:" + std::to_string(fault_stall_usec));
    // stallp defaults to 0.01 once stall is set; emit only a non-default.
    const double stallp_default = fault_stall_usec != 0 ? 0.01 : 0.0;
    if (fault_stall_rate != stallp_default) {
      addf("stallp:" + FormatProb(fault_stall_rate));
    }
    if (fault_seed != 13) addf("seed:" + std::to_string(fault_seed));
    if (spec.empty()) spec = "seed:" + std::to_string(fault_seed);
    add("fault=" + spec);
  }
  if (retry_attempts != 0) {
    std::string spec = std::to_string(retry_attempts);
    if (retry_backoff_usec != 200) {
      spec += ",backoff:" + std::to_string(retry_backoff_usec);
    }
    if (retry_deadline_usec != 0) {
      spec += ",deadline:" + std::to_string(retry_deadline_usec);
    }
    add("retry=" + spec);
  }
  return out + query;
}

Result<DeviceUri> ParseDeviceUri(const std::string& uri) {
  const size_t colon = uri.find(':');
  if (colon == std::string::npos) {
    return Status::InvalidArgument(
        "'" + uri + "' is not a device URI (expected mem: | sim:KIND[*N] | "
        "file:PATH | uring:PATH, optionally ?key=value&...)");
  }
  const std::string scheme = uri.substr(0, colon);
  std::string rest = uri.substr(colon + 1);
  std::string query;
  const size_t qmark = rest.find('?');
  if (qmark != std::string::npos) {
    query = rest.substr(qmark + 1);
    rest.resize(qmark);
  }

  DeviceUri out;
  if (scheme == "mem") {
    out.scheme = DeviceUri::Scheme::kMem;
    if (!rest.empty()) {
      return Status::InvalidArgument("mem: takes no body, got 'mem:" + rest +
                                     "'");
    }
  } else if (scheme == "sim") {
    out.scheme = DeviceUri::Scheme::kSim;
    std::string kind = rest;
    const size_t star = rest.find('*');
    if (star != std::string::npos) {
      kind = rest.substr(0, star);
      E2_ASSIGN_OR_RETURN(const uint64_t count,
                          ParseUriU64("*N", rest.substr(star + 1)));
      if (count == 0 || count > 1024) {
        return Status::InvalidArgument("sim: stripe width must be 1..1024");
      }
      out.sim_count = static_cast<uint32_t>(count);
    }
    E2_ASSIGN_OR_RETURN(out.sim_kind, ParseSimKind(kind));
  } else if (scheme == "file") {
    out.scheme = DeviceUri::Scheme::kFile;
    out.path = rest;
  } else if (scheme == "uring") {
    out.scheme = DeviceUri::Scheme::kUring;
    out.path = rest;
  } else {
    return Status::InvalidArgument("unknown device scheme '" + scheme +
                                   ":' (expected mem|sim|file|uring)");
  }

  // Query keys, scheme-checked: unknown or inapplicable keys are errors.
  size_t pos = 0;
  while (pos < query.size()) {
    size_t amp = query.find('&', pos);
    if (amp == std::string::npos) amp = query.size();
    const std::string kv = query.substr(pos, amp - pos);
    pos = amp + 1;
    const size_t eq = kv.find('=');
    if (kv.empty() || eq == std::string::npos || eq == 0) {
      return Status::InvalidArgument("malformed device URI option '" + kv +
                                     "' (expected key=value)");
    }
    const std::string key = kv.substr(0, eq);
    const std::string value = kv.substr(eq + 1);
    const bool is_file = out.scheme == DeviceUri::Scheme::kFile;
    const bool is_uring = out.scheme == DeviceUri::Scheme::kUring;
    if (key == "direct" && (is_file || is_uring)) {
      E2_ASSIGN_OR_RETURN(out.direct_io, ParseUriBool(key, value));
    } else if (key == "threads" && is_file) {
      E2_ASSIGN_OR_RETURN(const uint64_t threads, ParseUriU64(key, value));
      if (threads == 0 || threads > 512) {
        return Status::InvalidArgument("file: threads must be 1..512");
      }
      out.io_threads = static_cast<uint32_t>(threads);
    } else if (key == "sqpoll" && is_uring) {
      E2_ASSIGN_OR_RETURN(out.sqpoll, ParseUriBool(key, value));
    } else if (key == "iface" && out.scheme == DeviceUri::Scheme::kSim) {
      E2_RETURN_NOT_OK(ParseIfaceName(value).status());  // validate now
      out.iface = value;
    } else if (key == "queue") {
      E2_ASSIGN_OR_RETURN(const uint64_t queue, ParseUriU64(key, value));
      if (queue == 0 || queue > (1u << 20)) {
        return Status::InvalidArgument("queue must be 1..1048576");
      }
      out.queue_capacity = static_cast<uint32_t>(queue);
    } else if (key == "queues") {
      E2_ASSIGN_OR_RETURN(const uint64_t queues, ParseUriU64(key, value));
      if (queues > 255) {
        return Status::InvalidArgument(
            "queues must be 0 (router) .. 255 (native cap)");
      }
      out.queues = static_cast<uint32_t>(queues);
    } else if (key == "fixed" && is_uring) {
      E2_ASSIGN_OR_RETURN(out.fixed_buffers, ParseUriBool(key, value));
    } else if (key == "capacity") {
      E2_ASSIGN_OR_RETURN(out.capacity, ParseUriSize(key, value));
    } else if (key == "cache") {
      E2_ASSIGN_OR_RETURN(out.cache_bytes, ParseUriSize(key, value));
    } else if (key == "fault") {
      E2_RETURN_NOT_OK(ParseFaultSpec(value, &out));
    } else if (key == "retry") {
      E2_RETURN_NOT_OK(ParseRetrySpec(value, &out));
    } else {
      return Status::InvalidArgument(
          "device URI key '" + key + "' is unknown or does not apply to " +
          std::string(out.scheme_name()) +
          ": (known: direct [file,uring], threads [file], sqpoll [uring], "
          "fixed [uring], iface [sim], queue, queues, capacity, cache, "
          "fault, retry)");
    }
  }
  return out;
}

namespace {

/// The per-scheme device stack, before the cross-scheme cache layer.
Result<std::unique_ptr<BlockDevice>> OpenBareDeviceUri(
    const DeviceUri& uri, const DeviceUriOpenOptions& options) {
  const uint32_t queue = uri.queue_capacity != 0
                             ? uri.queue_capacity
                             : options.default_queue_capacity;
  const uint64_t capacity = uri.capacity != 0 ? uri.capacity : options.capacity;
  switch (uri.scheme) {
    case DeviceUri::Scheme::kMem: {
      if (capacity == 0) {
        return Status::InvalidArgument(
            "mem: needs a capacity (mem:?capacity=1g or the caller's size)");
      }
      E2_ASSIGN_OR_RETURN(auto dev, MemoryDevice::Create(capacity, queue));
      return std::unique_ptr<BlockDevice>(std::move(dev));
    }
    case DeviceUri::Scheme::kSim: {
      DeviceModel model = GetDeviceModel(uri.sim_kind);
      model.queue_capacity = queue;
      // An explicit capacity (URI or caller) overrides the model's
      // Table-2 nameplate: the multi-terabyte defaults are sparse, but
      // mapping them is not free everywhere (TSan's shadow map rejects
      // them) and an index image never needs that much.
      if (capacity != 0) model.capacity_bytes = capacity;
      std::unique_ptr<BlockDevice> stack;
      if (uri.sim_count == 1) {
        E2_ASSIGN_OR_RETURN(auto dev, SimulatedDevice::Create(model));
        stack = std::move(dev);
      } else {
        std::vector<std::unique_ptr<BlockDevice>> children;
        for (uint32_t i = 0; i < uri.sim_count; ++i) {
          E2_ASSIGN_OR_RETURN(auto dev, SimulatedDevice::Create(model));
          children.push_back(std::move(dev));
        }
        E2_ASSIGN_OR_RETURN(auto striped,
                            StripedDevice::Create(std::move(children)));
        stack = std::move(striped);
      }
      if (!uri.iface.empty()) {
        E2_ASSIGN_OR_RETURN(const InterfaceKind iface,
                            ParseIfaceName(uri.iface));
        stack = std::make_unique<ChargedDevice>(std::move(stack),
                                                GetInterfaceSpec(iface));
      }
      return stack;
    }
    case DeviceUri::Scheme::kFile:
    case DeviceUri::Scheme::kUring: {
      const FileBackendKind kind = uri.scheme == DeviceUri::Scheme::kUring
                                       ? FileBackendKind::kUring
                                       : FileBackendKind::kFile;
      if (uri.path.empty()) {
        return Status::InvalidArgument(std::string(uri.scheme_name()) +
                                       ": URI needs a backing file path");
      }
      if (!FileBackendAvailable(kind)) {
        return Status::Unimplemented(
            "uring: is unavailable on this host (kernel refused io_uring, or "
            "built without it); use file:" + uri.path);
      }
      FileBackendOptions opt;
      opt.capacity = capacity;
      opt.queue_capacity = queue;
      opt.direct_io = uri.direct_io;
      opt.io_threads = uri.io_threads;
      opt.sqpoll = uri.sqpoll;
      if (options.create) {
        if (opt.capacity == 0) {
          return Status::InvalidArgument(
              std::string(uri.scheme_name()) +
              ": create needs a capacity (append ?capacity=32g)");
        }
        return CreateFileBackend(kind, uri.path, opt);
      }
      return OpenFileBackend(kind, uri.path, opt);
    }
  }
  return Status::Internal("unreachable device scheme");
}

}  // namespace

Result<std::unique_ptr<BlockDevice>> OpenDeviceUri(
    const DeviceUri& uri, const DeviceUriOpenOptions& options) {
  E2_ASSIGN_OR_RETURN(auto dev, OpenBareDeviceUri(uri, options));
  // Layering, innermost out: bare -> fault -> retry -> cache. The fault
  // plane sits directly on the bare device so the retry layer sees (and
  // absorbs) injected transient errors; the cache stays outermost — a
  // hit skips device latency, iface CPU charge, and the fault plane.
  if (uri.fault) {
    FaultyDevice::Options fopt;
    fopt.submit_fail_rate = uri.fault_submit;
    fopt.completion_fail_rate = uri.fault_complete;
    fopt.corrupt_rate = uri.fault_corrupt;
    fopt.stall_rate = uri.fault_stall_rate;
    fopt.stall_usec = uri.fault_stall_usec;
    fopt.seed = uri.fault_seed;
    E2_ASSIGN_OR_RETURN(auto faulty, FaultyDevice::Create(std::move(dev), fopt));
    dev = std::move(faulty);
  }
  if (uri.retry_attempts != 0) {
    RetryDevice::Options ropt;
    ropt.max_attempts = uri.retry_attempts;
    ropt.backoff_usec = uri.retry_backoff_usec;
    ropt.deadline_usec = uri.retry_deadline_usec;
    E2_ASSIGN_OR_RETURN(auto retry, RetryDevice::Create(std::move(dev), ropt));
    dev = std::move(retry);
  }
  if (uri.cache_bytes == 0) return dev;
  CacheDevice::Options copt;
  copt.capacity_bytes = uri.cache_bytes;
  E2_ASSIGN_OR_RETURN(auto cached,
                      CacheDevice::Create(std::move(dev), copt));
  return std::unique_ptr<BlockDevice>(std::move(cached));
}

Result<std::unique_ptr<BlockDevice>> OpenDeviceUri(
    const std::string& uri, const DeviceUriOpenOptions& options) {
  E2_ASSIGN_OR_RETURN(const DeviceUri parsed, ParseDeviceUri(uri));
  return OpenDeviceUri(parsed, options);
}

}  // namespace e2lshos::storage
