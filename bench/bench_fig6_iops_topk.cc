// Reproduces Figure 6: the SRS-speed IOPS requirement on SIFT for
// varying k in top-k ANNS (k = 1, 5, 10, 50, 100), B = 512 bytes.
#include "common.h"

#include "model/cost_model.h"

using namespace e2lshos;

int main(int argc, char** argv) {
  const auto args = bench::Args::Parse(argc, argv);
  const std::string name = args.dataset.empty() ? "SIFT" : args.dataset;
  auto spec = data::GetDatasetSpec(name);
  if (!spec.ok()) return 1;
  const uint32_t ks[] = {1, 5, 10, 50, 100};
  auto w = bench::MakeWorkload(*spec, args.EffectiveN(*spec), args.queries, 100);
  if (!w.ok()) return 1;
  auto index = e2lsh::InMemoryE2lsh::Build(w->gen.base, w->params);
  if (!index.ok()) return 1;

  bench::PrintHeader(
      "Figure 6: required kIOPS for SRS speeds vs k (B = 512, " + name + ")",
      {"k", "ratio(lo acc)", "kIOPS", "ratio(hi acc)", "kIOPS"});
  for (const uint32_t k : ks) {
    const auto profile =
        bench::ProfileInMemoryIo(index->get(), *w, k, bench::DefaultSFactors());
    const auto srs = bench::SweepSrs(*w, k, bench::DefaultSrsFractions());
    std::vector<bench::IoProfilePoint> pts = profile;
    std::sort(pts.begin(), pts.end(),
              [](const auto& a, const auto& b) { return a.ratio < b.ratio; });
    auto req = [&](const bench::IoProfilePoint& p) {
      return model::RequiredIopsAsync(p.IoAt(128),
                                      bench::QueryNsAtRatio(srs, p.ratio)) / 1e3;
    };
    bench::PrintRow({std::to_string(k), bench::Fmt(pts.back().ratio, 3),
                     bench::Fmt(req(pts.back()), 1), bench::Fmt(pts.front().ratio, 3),
                     bench::Fmt(req(pts.front()), 1)});
  }
  std::printf(
      "\nExpected shape (paper): larger k raises the requirement in the "
      "high-accuracy\nregion, but not beyond the low-accuracy k=1 "
      "requirement's order of magnitude.\n");
  return 0;
}
