// Per-thread I/O queue pairs over a shared device, mirroring NVMe
// multi-queue semantics — in software.
//
// A BlockDevice has a single completion stream: if two query engines
// poll the same device, each would harvest completions belonging to the
// other. QueueRouter multiplexes one device into independent logical
// queues — each queue tags its submissions (high bits of user_data) and
// receives exactly its own completions; foreign completions drained
// during a poll are routed to their owner's inbox.
//
// Since the introduction of native multi-queue devices (see
// storage/multi_queue.h), this router is the documented FALLBACK SHIM:
// AcquireQueues wraps a device in it automatically when the device has
// no native queues (wrapped decorators like FaultyDevice, or a caller
// forcing the router path for parity testing). Devices with native
// queues bypass it entirely — no router mutex is reachable from the
// per-shard submit/poll hot path.
//
// Every routed queue carries its own accounting: outstanding() counts
// requests that queue submitted but has not yet harvested, and stats()
// covers only that queue's traffic — a shard inspecting "its" queue
// never sees another shard's I/O.
#pragma once

#include <atomic>
#include <deque>
#include <memory>
#include <mutex>
#include <vector>

#include "storage/block_device.h"

namespace e2lshos::storage {

class QueueRouter {
 public:
  /// The router borrows `inner`; it must outlive the router and all
  /// queues. Queues must also not outlive the router.
  explicit QueueRouter(BlockDevice* inner) : inner_(inner) {
    queues_.reserve(kMaxQueues);
  }

  /// Create a new logical queue. Thread-safe. At most 255 queues.
  std::unique_ptr<BlockDevice> CreateQueue();

  BlockDevice* inner() { return inner_; }

 private:
  friend class RoutedQueue;
  static constexpr int kTagShift = 56;
  static constexpr uint32_t kMaxQueues = 255;

  /// \brief Per-queue state. Submission-side counters are atomics so the
  /// submit path stays lock-free; harvest-side counters live under the
  /// router mutex, which Poll already holds while routing.
  struct QueueState {
    std::deque<IoCompletion> inbox;  ///< Guarded by router mu_.
    std::atomic<uint32_t> outstanding{0};
    std::atomic<uint64_t> reads_submitted{0};
    std::atomic<uint64_t> bytes_read{0};
    std::atomic<uint64_t> bytes_written{0};
    /// reads_completed + read_latency, counted at harvest. Guarded by mu_.
    uint64_t reads_completed = 0;
    util::LatencyHistogram read_latency;
  };

  Status Submit(uint32_t queue_id, const IoRequest& req);
  size_t Poll(uint32_t queue_id, IoCompletion* out, size_t max);
  Status WriteThrough(uint32_t queue_id, uint64_t offset, const void* data,
                      uint32_t length);
  uint32_t QueueOutstanding(uint32_t queue_id) const;
  DeviceStats QueueStats(uint32_t queue_id) const;
  void ResetQueueStats(uint32_t queue_id);

  BlockDevice* inner_;
  mutable std::mutex mu_;
  /// unique_ptr elements: stable addresses for the lock-free submit path
  /// (the vector is reserved to kMaxQueues, so push_back in CreateQueue
  /// never reallocates under a concurrent reader either).
  std::vector<std::unique_ptr<QueueState>> queues_;
};

/// \brief One logical queue; behaves as a BlockDevice.
class RoutedQueue : public BlockDevice {
 public:
  RoutedQueue(QueueRouter* router, uint32_t id) : router_(router), id_(id) {}

  Status SubmitRead(const IoRequest& req) override {
    return router_->Submit(id_, req);
  }
  size_t PollCompletions(IoCompletion* out, size_t max) override {
    return router_->Poll(id_, out, max);
  }
  Status Write(uint64_t offset, const void* data, uint32_t length) override {
    return router_->WriteThrough(id_, offset, data, length);
  }
  uint64_t capacity() const override { return router_->inner()->capacity(); }
  uint32_t io_alignment() const override {
    return router_->inner()->io_alignment();
  }
  /// Requests THIS queue submitted but has not harvested yet (not the
  /// shared device's global depth: per-queue backpressure must not stall
  /// one shard on another shard's in-flight I/O).
  uint32_t outstanding() const override {
    return router_->QueueOutstanding(id_);
  }
  std::string name() const override {
    return router_->inner()->name() + " q" + std::to_string(id_);
  }
  /// This queue's traffic only; the shared device's own stats() remains
  /// the cross-queue aggregate.
  DeviceStats stats() const override { return router_->QueueStats(id_); }
  void ResetStats() override { router_->ResetQueueStats(id_); }
  /// Forward to the shared device: a first registration wins, later
  /// queues get FailedPrecondition (callers treat registration as
  /// best-effort).
  Status RegisterBuffers(
      const std::vector<std::pair<void*, size_t>>& regions) override {
    return router_->inner()->RegisterBuffers(regions);
  }

 private:
  QueueRouter* router_;
  uint32_t id_;
};

}  // namespace e2lshos::storage
