// Bounded-retry layer over any BlockDevice: transient read errors —
// from flaky hardware or an injected fault plane (faulty_device.h) —
// become delayed successes instead of failed queries.
//
// Policy: up to `max_attempts` total attempts per read, exponential
// backoff with jitter between attempts, and an optional per-request
// deadline measured from the first submit. Only transient errors are
// retried (IoError / Internal / Unavailable); ResourceExhausted is
// backpressure and OutOfRange / InvalidArgument are caller bugs — all
// three pass through untouched.
//
// The layer is asynchronous and poll-driven, so engine threads never
// block in a backoff sleep:
//   * a transient *submit* error is absorbed — SubmitRead returns OK and
//     the request parks in the lane's deferred list with a due time;
//   * a transient *completion* error removes the completion from the
//     harvest and parks the request the same way;
//   * every PollCompletions first resubmits the deferred requests whose
//     backoff has elapsed, then harvests the inner device;
//   * a request out of attempts or past its deadline completes with the
//     last error (counted in DeviceStats::retries_exhausted).
// Each resubmit bumps DeviceStats::retries. A retried read that finally
// succeeds is indistinguishable from a slow one: same bytes, same OK
// completion, latency covering the whole span including backoff.
//
// First-class URI layer: `retry=N[,backoff:USEC][,deadline:USEC]` on any
// scheme, stacked outside `fault=` (see storage/device_registry.h).
// Native queues mirror the inner device's; each retry queue drives one
// inner queue through a private lane, preserving zero-shared-lock
// serving.
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

#include "storage/block_device.h"
#include "storage/multi_queue.h"

namespace e2lshos::storage {

class RetryDevice : public BlockDevice, public MultiQueueDevice {
 public:
  struct Options {
    /// Total attempts per read, the first included. 1 = no retries.
    uint32_t max_attempts = 3;
    /// Backoff before the second attempt; doubles each further attempt.
    uint64_t backoff_usec = 200;
    /// Uniform jitter applied to each backoff: factor in [1-j, 1+j].
    double jitter = 0.5;
    /// Total per-request budget from first submit; a retry that cannot
    /// finish by then fails immediately. 0 = no deadline.
    uint64_t deadline_usec = 0;
    uint64_t seed = 17;  ///< Jitter RNG.
  };

  /// Own the wrapped device (the URI-layer path).
  static Result<std::unique_ptr<RetryDevice>> Create(
      std::unique_ptr<BlockDevice> inner, const Options& options);

  /// Borrow a caller-owned device (tests sharing one stack).
  RetryDevice(BlockDevice* inner, const Options& options);

  ~RetryDevice() override;

  Status SubmitRead(const IoRequest& req) override;
  size_t PollCompletions(IoCompletion* out, size_t max) override;
  Status Write(uint64_t offset, const void* data, uint32_t length) override;
  uint64_t capacity() const override { return inner_->capacity(); }
  uint32_t io_alignment() const override { return inner_->io_alignment(); }
  uint32_t outstanding() const override;
  std::string name() const override { return inner_->name() + " (retry)"; }
  DeviceStats stats() const override;
  void ResetStats() override;
  Status RegisterBuffers(
      const std::vector<std::pair<void*, size_t>>& regions) override {
    return inner_->RegisterBuffers(regions);
  }

  MultiQueueDevice* multi_queue() override {
    return inner_->multi_queue() != nullptr ? this : nullptr;
  }
  uint32_t max_queues() const override;
  Result<std::unique_ptr<BlockDevice>> CreateQueue(
      const QueueOptions& options) override;

  /// The wrapped device (borrowed; owned by this object when Create()d).
  BlockDevice* inner() { return inner_; }

  /// Aggregate retry counters (device lane + queue lanes, live and
  /// retired). Also surfaced in DeviceStats.
  uint64_t retries() const;
  uint64_t retries_exhausted() const;

 private:
  class Lane;   // per-endpoint retry state (retry_device.cc)
  class Queue;  // Lane + one native inner queue
  friend class Queue;

  RetryDevice(std::unique_ptr<BlockDevice> owned, BlockDevice* inner,
              const Options& options);

  struct Counters {
    uint64_t retries = 0;
    uint64_t exhausted = 0;
  };

  void RetireQueue(Queue* queue);
  Counters TotalCounters() const;

  std::unique_ptr<BlockDevice> owned_;  ///< Null when borrowing.
  BlockDevice* inner_;
  Options options_;
  std::unique_ptr<Lane> lane_;  ///< Device-level path over inner_.
  mutable std::mutex queues_mu_;
  std::vector<Queue*> queues_;
  Counters retired_;
  uint64_t queue_seq_ = 0;
};

}  // namespace e2lshos::storage
