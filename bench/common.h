// Shared harness for the per-table / per-figure benchmark binaries.
//
// Every bench binary regenerates one table or figure of the paper: it
// sets up the scaled workloads from the dataset registry, runs the
// relevant methods across their accuracy knobs, and prints the same rows
// or series the paper reports (TSV-style, one block per table/figure).
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "baselines/qalsh.h"
#include "baselines/srs.h"
#include "core/builder.h"
#include "core/query_engine.h"
#include "data/ground_truth.h"
#include "data/registry.h"
#include "e2lsh/in_memory.h"
#include "storage/device_registry.h"
#include "storage/interface_model.h"
#include "storage/memory_device.h"
#include "storage/striped_device.h"
#include "util/jsonl.h"

namespace e2lshos::bench {

/// \brief Common command-line flags: --dataset NAME, --n N, --queries Q,
/// --shards S (multi-core sharded mode where supported), --json PATH
/// (machine-readable JSONL rows alongside the TSV tables), --device URI
/// (run the bench's real-SSD mode on a file:/uring: backend — e.g.
/// `--device uring:?direct=1&sqpoll=1`; the path may be omitted, each
/// bench then supplies its default under /tmp), --fast (quarter-scale),
/// --help. The URI vocabulary is storage::ParseDeviceUri — the same
/// string the CLI's --device takes.
struct Args {
  std::string dataset;
  std::string json;         // empty = no JSONL output
  std::string device;       // device URI; empty = simulated stacks only
  uint64_t n = 0;           // 0 = registry default
  uint64_t queries = 0;     // 0 = registry default
  uint32_t shards = 0;      // 0 = sharded mode off
  uint64_t deadline_us = 0; // 0 = no load shedding (serving benches)
  bool fast = false;

  static Args Parse(int argc, char** argv);
  /// Effective n for a spec: explicit --n, else default (quartered by --fast).
  uint64_t EffectiveN(const data::DatasetSpec& spec) const;
  /// Open the --json sink; nullptr when the flag is absent (a failed
  /// open warns and also returns nullptr, so benches never abort on it).
  std::unique_ptr<util::JsonlWriter> OpenJson() const;
  /// The backing-file path of the --device URI, defaulting to a
  /// per-bench file under /tmp when the URI carries none (so
  /// `--device file:` and `--device uring:?direct=1` just work).
  std::string EffectiveDevicePath(const std::string& bench_name) const;
};

/// \brief One measured point of a real-device random-read sweep.
struct MeasuredIops {
  uint32_t block_bytes = 0;
  uint32_t queue_depth = 0;
  uint64_t reads = 0;
  double kiops = 0;
  double mbps = 0;
  double mean_lat_us = 0;
  double p99_lat_us = 0;
};

struct IopsBenchOptions {
  uint32_t block_bytes = 512;
  uint32_t queue_depth = 32;
  uint64_t duration_ms = 400;
  /// Read offsets are drawn from [0, span_bytes); 0 = whole device.
  uint64_t span_bytes = 0;
  /// Optional caller-owned destination arena (>= queue_depth *
  /// block_bytes). Pass the region you registered with
  /// UringDevice::RegisterBuffers to measure the fixed-buffer path; when
  /// null an internal arena is used.
  uint8_t* arena = nullptr;
  size_t arena_bytes = 0;
  uint64_t seed = 42;
};

/// Saturating random-read benchmark: keeps `queue_depth` reads in flight
/// on `dev` for `duration_ms`, then drains. Resets device stats.
Result<MeasuredIops> MeasureRandomReadIops(storage::BlockDevice* dev,
                                           const IopsBenchOptions& options);

/// Write `bytes` of deterministic noise to [0, bytes) of `dev` (1 MiB
/// aligned chunks, safe for direct-mode targets).
Status FillDeviceWithNoise(storage::BlockDevice* dev, uint64_t bytes);

/// Create the --device URI's backing file (at `path` when the URI names
/// none) sized for `bytes`. The URI must be file: or uring:. With
/// `fill_noise` (the raw-IOPS benches) the file is filled with noise so
/// random reads hit real extents; callers that immediately
/// CopyIndexImage over it pass false and skip the redundant write pass.
/// Returns InvalidArgument for a malformed or non-file URI,
/// Unimplemented when the backend cannot run here.
Result<std::unique_ptr<storage::BlockDevice>> MakeRealDevice(
    const Args& args, const std::string& path, uint64_t bytes,
    uint32_t queue_capacity = 1024, bool fill_noise = true);

/// \brief A fully prepared workload: data, queries, ground truth, params.
struct Workload {
  data::DatasetSpec spec;
  data::GeneratedData gen;
  data::GroundTruth gt;
  lsh::E2lshParams params;

  uint64_t n() const { return gen.base.n(); }
  uint32_t dim() const { return gen.base.dim(); }
};

/// Prepare one dataset: generate, compute exact top-gt_k, derive params.
Result<Workload> MakeWorkload(const data::DatasetSpec& spec, uint64_t n_override,
                              uint64_t nq_override, uint32_t gt_k);

/// \brief One point of an accuracy/performance sweep.
struct SweepPoint {
  double knob = 0;          ///< The knob value that produced this point.
  double ratio = 0;         ///< Mean overall ratio (accuracy).
  double query_ns = 0;      ///< Mean wall time per query.
  double qps = 0;
  double mean_ios = 0;      ///< E2LSH(oS) only: I/Os per query.
  double mean_radii = 0;    ///< E2LSH(oS) only.
  double compute_ns = 0;    ///< E2LSH(oS) only: CPU in hash+distance.
  double io_cpu_ns = 0;     ///< E2LSHoS only: CPU in I/O submission.
};

/// Default knob grids.
std::vector<double> DefaultSFactors();       // E2LSH(oS): S = f * L
std::vector<double> DefaultSrsFractions();   // SRS: T' = f * n
std::vector<double> DefaultQalshCs();        // QALSH: approximation ratio

/// Sweep in-memory E2LSH over candidate-cap factors.
std::vector<SweepPoint> SweepInMemory(e2lsh::InMemoryE2lsh* index,
                                      const Workload& w, uint32_t k,
                                      const std::vector<double>& s_factors);

/// Sweep E2LSHoS over candidate-cap factors (engine options fixed).
std::vector<SweepPoint> SweepOs(core::StorageIndex* index, const Workload& w,
                                uint32_t k, const core::EngineOptions& opts,
                                const std::vector<double>& s_factors,
                                storage::ChargedDevice* charged = nullptr);

/// Sweep SRS over verification budgets (fractions of n).
std::vector<SweepPoint> SweepSrs(const Workload& w, uint32_t k,
                                 const std::vector<double>& fractions);

/// Sweep QALSH over approximation ratios.
std::vector<SweepPoint> SweepQalsh(const Workload& w, uint32_t k,
                                   const std::vector<double>& cs);

/// \brief One accuracy point with the full I/O profile needed by the
/// Sec. 4.3/4.4 analysis (Figs. 3-8): per-bucket read sizes let us price
/// any block size B after the fact.
struct IoProfilePoint {
  double s_factor = 0;
  double ratio = 0;
  double e2lsh_query_ns = 0;       ///< In-memory E2LSH query time (T_E2LSH).
  uint64_t num_queries = 0;
  uint64_t buckets_probed = 0;     ///< Across all queries.
  std::vector<uint32_t> bucket_read_sizes;

  /// N_IO with unlimited block size.
  double IoInf() const;
  /// N_IO with objects_per_io entries per bucket read (paper Fig. 3 uses
  /// 4-byte entries: objects_per_io = B / 4).
  double IoAt(uint32_t objects_per_io) const;
};

/// Profile in-memory E2LSH across candidate-cap factors.
std::vector<IoProfilePoint> ProfileInMemoryIo(e2lsh::InMemoryE2lsh* index,
                                              const Workload& w, uint32_t k,
                                              const std::vector<double>& s_factors);

/// Interpolate the query time (ns) a sweep achieves at a target overall
/// ratio; falls back to the most accurate point when the target is out of
/// reach (the paper reports at ratio 1.05).
double QueryNsAtRatio(const std::vector<SweepPoint>& sweep, double target);

/// Same for an arbitrary field extracted by `get`.
double FieldAtRatio(const std::vector<SweepPoint>& sweep, double target,
                    double SweepPoint::*field);

/// \brief A storage stack: devices (optionally striped), wrapped in an
/// interface cost model.
struct StorageStack {
  std::unique_ptr<storage::BlockDevice> raw;  // device or stripe set
  std::unique_ptr<storage::ChargedDevice> charged;
  std::string name;
  storage::BlockDevice* device() { return charged.get(); }
};

/// Build a stack of `count` devices of `kind` behind `iface`.
Result<StorageStack> MakeStack(storage::DeviceKind kind, uint32_t count,
                               storage::InterfaceKind iface,
                               uint32_t queue_capacity = 1024);

/// A core::ShardOptions::wrap_shard_device hook that wraps each shard's
/// queue pair in a ChargedDevice, so every shard pays `iface`'s per-core
/// submission cost on its own core.
std::function<std::unique_ptr<storage::BlockDevice>(
    std::unique_ptr<storage::BlockDevice>)>
ChargeWrapper(storage::InterfaceKind iface);

/// Copy a built index byte image from one device to another (so one build
/// can be benchmarked on many storage configurations).
Status CopyIndexImage(storage::BlockDevice* src, storage::BlockDevice* dst,
                      uint64_t bytes);

/// Pretty printing: pipe-separated header + rows with fixed precision.
void PrintHeader(const std::string& title, const std::vector<std::string>& cols);
void PrintRow(const std::vector<std::string>& cells);
std::string Fmt(double v, int precision = 2);
std::string FmtBytes(uint64_t bytes);

}  // namespace e2lshos::bench
