// CRC32C (Castagnoli) — the checksum used for on-device block integrity.
//
// Table-based slice-by-4 implementation: no SSE4.2 dependency, so the
// same bits verify on any host. The polynomial (0x1EDC6F41, reflected
// 0x82F63B78) matches iSCSI/ext4/LevelDB, i.e. what a hardware CRC32C
// instruction would produce — swapping in an accelerated path later
// cannot change stored checksums.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>

namespace e2lshos::util {

namespace crc_internal {

struct Crc32cTables {
  std::array<std::array<uint32_t, 256>, 4> t;

  constexpr Crc32cTables() : t{} {
    constexpr uint32_t kPoly = 0x82F63B78u;  // reflected Castagnoli
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t crc = i;
      for (int j = 0; j < 8; ++j) {
        crc = (crc >> 1) ^ ((crc & 1u) ? kPoly : 0u);
      }
      t[0][i] = crc;
    }
    for (uint32_t i = 0; i < 256; ++i) {
      t[1][i] = (t[0][i] >> 8) ^ t[0][t[0][i] & 0xFFu];
      t[2][i] = (t[1][i] >> 8) ^ t[0][t[1][i] & 0xFFu];
      t[3][i] = (t[2][i] >> 8) ^ t[0][t[2][i] & 0xFFu];
    }
  }
};

inline constexpr Crc32cTables kCrc32cTables{};

}  // namespace crc_internal

/// Extend a running CRC32C over `len` bytes. Start (and finish) with
/// the one-shot Crc32c() unless incrementally checksumming a stream;
/// `crc` here is the *internal* (pre-finalization) state, i.e.
/// Crc32cExtend(Crc32cExtend(0xFFFFFFFF, a), b) finalized equals
/// Crc32c over a||b.
inline uint32_t Crc32cExtend(uint32_t crc, const void* data, size_t len) {
  const auto& t = crc_internal::kCrc32cTables.t;
  const uint8_t* p = static_cast<const uint8_t*>(data);
  while (len >= 4) {
    crc ^= static_cast<uint32_t>(p[0]) | (static_cast<uint32_t>(p[1]) << 8) |
           (static_cast<uint32_t>(p[2]) << 16) |
           (static_cast<uint32_t>(p[3]) << 24);
    crc = t[3][crc & 0xFFu] ^ t[2][(crc >> 8) & 0xFFu] ^
          t[1][(crc >> 16) & 0xFFu] ^ t[0][crc >> 24];
    p += 4;
    len -= 4;
  }
  while (len-- > 0) {
    crc = (crc >> 8) ^ t[0][(crc ^ *p++) & 0xFFu];
  }
  return crc;
}

/// One-shot CRC32C of a buffer (standard init 0xFFFFFFFF, final xor).
inline uint32_t Crc32c(const void* data, size_t len) {
  return Crc32cExtend(0xFFFFFFFFu, data, len) ^ 0xFFFFFFFFu;
}

}  // namespace e2lshos::util
