#include "storage/multi_queue.h"

namespace e2lshos::storage {

QueueSet AcquireQueues(BlockDevice* device, uint32_t count,
                       const AcquireOptions& options) {
  QueueSet set;
  if (count == 0) count = 1;

  MultiQueueDevice* native = device->multi_queue();
  const bool within_cap =
      options.max_native == 0 || count <= options.max_native;
  if (native != nullptr && !options.force_router && within_cap &&
      count <= native->max_queues()) {
    set.queues.reserve(count);
    bool ok = true;
    for (uint32_t i = 0; i < count; ++i) {
      auto queue = native->CreateQueue(options.queue);
      if (!queue.ok() || *queue == nullptr) {
        ok = false;
        break;
      }
      set.queues.push_back(std::move(queue).value());
    }
    if (ok) {
      set.native = true;
      return set;
    }
    // A ring the kernel refused, an fd limit, ...: discard any queues
    // created so far and serve the whole set through the router so the
    // caller never sees a mixed or partial set.
    set.queues.clear();
  }

  set.router = std::make_unique<QueueRouter>(device);
  set.queues.reserve(count);
  for (uint32_t i = 0; i < count; ++i) {
    set.queues.push_back(set.router->CreateQueue());
  }
  set.native = false;
  return set;
}

}  // namespace e2lshos::storage
