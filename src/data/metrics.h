// Dataset hardness metrics used in the paper's Table 1:
//
//   * Relative Contrast (RC, He et al. 2012): mean distance from a query
//     to a random database point divided by the distance to its nearest
//     neighbor. Smaller RC -> harder dataset.
//   * Local Intrinsic Dimensionality (LID, Amsaleg et al. 2015): the MLE
//     estimator from k-NN distances. Larger LID -> harder dataset.
#pragma once

#include <cstdint>

#include "data/dataset.h"
#include "data/ground_truth.h"

namespace e2lshos::data {

struct HardnessMetrics {
  double rc = 0.0;
  double lid = 0.0;
  double mean_distance = 0.0;
  double mean_nn_distance = 0.0;
};

/// Estimate RC and LID over the query set using exact neighbors.
/// `gt` must hold at least `lid_k` neighbors per query (default 20).
HardnessMetrics EstimateHardness(const Dataset& base, const Dataset& queries,
                                 const GroundTruth& gt, uint32_t lid_k = 20,
                                 uint64_t pair_samples = 2000, uint64_t seed = 99);

}  // namespace e2lshos::data
