// Skewed-traffic cache sweep (no single paper figure; supports the
// Sec. 7 "storage-specific issues" discussion): production query streams
// are rarely i.i.d. — a few hot queries dominate (Zipf) or a hot working
// set absorbs most of the load. This bench measures what the PR's
// transparent DRAM read cache (storage::CacheDevice, `cache=SIZE` in any
// device URI) buys on such streams.
//
// One index image is built once, copied onto a simulated cSSD, and
// queried under skew distribution x cache size:
//
//   distributions: Zipf theta=0.5, Zipf theta=1.0, hotspot 90/10
//   cache sizes:   0 (baseline), 5%, 10%, 25% of the index image
//
// Per cell: a warmup pass populates the cache, device counters reset
// (cache *contents* survive ResetStats by design), then a measured pass
// reports hit rate, QPS, and p99 latency. Headline acceptance cell:
// Zipf theta=1.0 with a cache of 10% of the index must serve >= 90% of
// reads from DRAM and beat the uncached QPS; its rows carry the
// headline_* keys bench/run_all.sh folds into BENCH_<n>.json.
#include "common.h"

#include <algorithm>

#include "core/query_engine.h"
#include "data/generators.h"
#include "storage/memory_device.h"
#include "util/aligned_buffer.h"

using namespace e2lshos;

namespace {

// p99 of per-query wall latency, in microseconds.
double P99Us(const std::vector<core::QueryStats>& stats) {
  if (stats.empty()) return 0.0;
  std::vector<uint64_t> ns;
  ns.reserve(stats.size());
  for (const auto& s : stats) ns.push_back(s.wall_ns);
  std::sort(ns.begin(), ns.end());
  const size_t idx = (ns.size() - 1) * 99 / 100;
  return static_cast<double>(ns[idx]) / 1e3;
}

}  // namespace

int main(int argc, char** argv) {
  const auto args = bench::Args::Parse(argc, argv);
  auto json = args.OpenJson();
  const std::string name = args.dataset.empty() ? "SIFT" : args.dataset;
  auto spec = data::GetDatasetSpec(name);
  if (!spec.ok()) return 1;
  const uint64_t n = args.n ? args.n : 2000;
  // Measured draws per cell. The population behind the skewed modes is
  // deliberately small (32 distinct templates): hot-query traffic repeats,
  // and repeats are exactly what a read cache converts into DRAM hits.
  const uint64_t nq = args.queries ? args.queries : 256;
  constexpr uint64_t kPopulation = 32;

  auto w = bench::MakeWorkload(*spec, n, 16, 1);
  if (!w.ok()) {
    std::fprintf(stderr, "workload: %s\n", w.status().ToString().c_str());
    return 1;
  }

  // Build once on an instant device; copy the image into every cell.
  auto master_dev = storage::MemoryDevice::Create(1ULL << 30);
  if (!master_dev.ok()) return 1;
  auto master =
      core::IndexBuilder::Build(w->gen.base, w->params, master_dev->get());
  if (!master.ok()) {
    std::fprintf(stderr, "build: %s\n", master.status().ToString().c_str());
    return 1;
  }
  const uint64_t image_bytes = (*master)->sizes().storage_bytes;

  struct Skew {
    const char* label;
    data::QueryDistribution dist;
    double theta;  // kZipf only
  };
  const Skew skews[] = {
      {"zipf0.5", data::QueryDistribution::kZipf, 0.5},
      {"zipf1.0", data::QueryDistribution::kZipf, 1.0},
      {"hotspot", data::QueryDistribution::kHotspot, 0.0},
  };
  const double cache_fracs[] = {0.0, 0.05, 0.10, 0.25};

  // One fixed query set per skew, drawn up front so every cache size of a
  // row answers the byte-identical stream.
  auto make_queries = [&](const Skew& s) {
    data::GeneratorSpec g = spec->gen;
    g.seed = spec->gen.seed + 7717;
    g.query_dist = s.dist;
    g.query_population = kPopulation;
    if (s.dist == data::QueryDistribution::kZipf) g.zipf_theta = s.theta;
    data::PointSampler sampler(g);
    data::Dataset qs("skew", g.dim);
    qs.Reserve(nq);
    std::vector<float> buf(g.dim);
    for (uint64_t i = 0; i < nq; ++i) {
      sampler.NextQuery(buf.data());
      qs.Append(buf.data());
    }
    return qs;
  };

  core::EngineOptions opts;
  opts.num_contexts = 32;
  opts.max_inflight_ios = 256;

  bench::PrintHeader(
      "Skew x cache sweep on sim:cssd (" + name + ", n=" + std::to_string(n) +
          ", population=" + std::to_string(kPopulation) +
          ", image=" + bench::FmtBytes(image_bytes) + ")",
      {"skew", "cache", "hit rate", "QPS", "p99 us", "mean I/Os"});

  for (const auto& skew : skews) {
    const data::Dataset queries = make_queries(skew);
    double qps_nocache = 0.0;
    for (const double frac : cache_fracs) {
      const uint64_t cache_bytes =
          frac > 0 ? static_cast<uint64_t>(frac * image_bytes) : 0;
      std::string uri = "sim:cssd";
      if (cache_bytes > 0) uri += "?cache=" + std::to_string(cache_bytes);
      storage::DeviceUriOpenOptions oopts;
      // Size the simulated drive to the image (the model's nameplate
      // capacity is irrelevant here), rounded up for the stripe layout.
      oopts.capacity = (image_bytes + (1ULL << 20)) & ~((1ULL << 20) - 1);
      auto dev = storage::OpenDeviceUri(uri, oopts);
      if (!dev.ok()) {
        std::fprintf(stderr, "open %s: %s\n", uri.c_str(),
                     dev.status().ToString().c_str());
        continue;
      }
      if (!bench::CopyIndexImage(master_dev->get(), dev->get(), image_bytes)
               .ok()) {
        continue;
      }
      auto view = (*master)->WithDevice(dev->get());
      core::QueryEngine engine(view.get(), &w->gen.base, opts);

      // Warmup populates the cache; the measured pass starts from clean
      // counters but a warm cache.
      if (!engine.SearchBatch(queries, 1).ok()) continue;
      (*dev)->ResetStats();
      auto batch = engine.SearchBatch(queries, 1);
      if (!batch.ok()) continue;

      const auto dstats = (*dev)->stats();
      const uint64_t lookups = dstats.cache_hits + dstats.cache_misses;
      const double hit_rate =
          lookups > 0
              ? static_cast<double>(dstats.cache_hits) / static_cast<double>(lookups)
              : 0.0;
      const double qps = batch->QueriesPerSecond();
      const double p99_us = P99Us(batch->stats);
      if (cache_bytes == 0) qps_nocache = qps;

      bench::PrintRow({skew.label,
                       cache_bytes ? bench::FmtBytes(cache_bytes) : "off",
                       bench::Fmt(hit_rate * 100, 1) + "%", bench::Fmt(qps, 0),
                       bench::Fmt(p99_us, 1), bench::Fmt(batch->MeanIos(), 1)});
      if (json != nullptr) {
        util::JsonRow row;
        row.Set("bench", "skew_cache")
            .Set("dataset", name)
            .Set("n", w->n())
            .Set("skew", skew.label)
            .Set("zipf_theta", skew.theta)
            .Set("population", kPopulation)
            .Set("queries", nq)
            .Set("cache_frac", frac)
            .Set("cache_bytes", cache_bytes)
            .Set("image_bytes", image_bytes)
            .Set("hit_rate", hit_rate)
            .Set("qps", qps)
            .Set("p99_us", p99_us)
            .Set("mean_ios", batch->MeanIos())
            .Set("cache_hits", dstats.cache_hits)
            .Set("cache_misses", dstats.cache_misses)
            .Set("cache_evictions", dstats.cache_evictions)
            .Set("bytes_cached", dstats.bytes_cached);
        // The acceptance cell and its uncached baseline carry dedicated
        // keys so run_all.sh's max-extraction lands on exactly them.
        const bool theta1 = skew.dist == data::QueryDistribution::kZipf &&
                            skew.theta == 1.0;
        if (theta1 && frac == 0.10) {
          row.Set("headline_hit_rate", hit_rate).Set("headline_qps", qps);
        }
        if (theta1 && frac == 0.0) row.Set("headline_qps_nocache", qps);
        json->Write(row);
      }
    }
    if (qps_nocache > 0) std::printf("\n");
  }

  std::printf(
      "\nExpected shape: hit rate grows with cache size and with skew "
      "(theta=1.0 and\nhotspot concentrate traffic on few templates); at 10%% "
      "of the index the\ntheta=1.0 stream serves >= 90%% of reads from DRAM "
      "and QPS rises well above\nthe uncached baseline, since hits skip the "
      "simulated device latency entirely.\n");
  return 0;
}
