// Command-line front end over the e2lshos::Index facade: build, persist,
// query, and serve E2LSHoS indexes on any storage backend a device URI
// can name.
//
//   e2lshos_cli gen    --dataset SIFT --out data.fvecs [--n N] [--queries Q]
//   e2lshos_cli build  --base data.fvecs --index idx.bin --device URI
//                      [--rho R] [--c C] [--w W] [--gamma G] [--s S]
//                      [--max-n N]
//   e2lshos_cli query  --base data.fvecs --index idx.bin --device URI
//                      --queries q.fvecs [--k K] [--shards S]
//                      [--probe-contexts P] [--max-n N]
//   e2lshos_cli serve  --base data.fvecs --index idx.bin --device URI
//                      [--queries q.fvecs] [--count N] [--rate QPS]
//                      [--k K] [--shards S] [--batch B] [--max-wait-us W]
//                      [--deadline-us D] [--probe-contexts P] [--max-n N]
//
// The device URI selects and configures the backend in one string —
// file:/path/img.bin, file:/path/img.bin?direct=1&threads=8,
// uring:/path/img.bin?sqpoll=1, sim:cssd*4, mem: — replacing the old
// --image/--device/--direct/--sqpoll flag zoo. Build writes the image
// through the URI's device and the metadata to --index; query/serve
// reopen both. mem:/sim: indexes persist their image in a
// `<index>.image` sidecar, so even simulated runs survive restarts.
//
// Unknown flags and malformed values are errors with a usage hint,
// never silently ignored.
#include <algorithm>
#include <array>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <set>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "api/index.h"
#include "data/io.h"
#include "data/registry.h"
#include "net/client.h"
#include "net/daemon.h"
#include "net/socket.h"
#include "util/clock.h"
#include "util/parse.h"
#include "util/rng.h"

using namespace e2lshos;

namespace {

using FlagMap = std::map<std::string, std::string>;

/// Strict flag parser: every token must be a known `--flag value` pair.
/// Flags listed in `repeatable` may appear any number of times (their
/// values land in *repeated, in order); every other flag at most once.
Result<FlagMap> ParseFlags(int argc, char** argv,
                           const std::set<std::string>& known,
                           const std::set<std::string>& repeatable = {},
                           std::vector<std::pair<std::string, std::string>>*
                               repeated = nullptr) {
  auto usage_hint = [&known]() {
    std::string hint = " (known flags:";
    for (const auto& k : known) hint += " --" + k;
    hint += "; run without arguments for usage)";
    return hint;
  };
  FlagMap flags;
  for (int i = 2; i < argc; ++i) {
    const std::string token = argv[i];
    if (token.size() < 3 || token.compare(0, 2, "--") != 0) {
      return Status::InvalidArgument("expected a --flag, got '" + token + "'" +
                                     usage_hint());
    }
    const std::string name = token.substr(2);
    if (known.count(name) == 0 && repeatable.count(name) == 0) {
      return Status::InvalidArgument("unknown flag '" + token + "'" +
                                     usage_hint());
    }
    if (i + 1 >= argc) {
      return Status::InvalidArgument("flag '" + token + "' needs a value" +
                                     usage_hint());
    }
    if (repeatable.count(name) != 0) {
      repeated->emplace_back(name, argv[++i]);
      continue;
    }
    if (!flags.emplace(name, argv[++i]).second) {
      return Status::InvalidArgument("flag '" + token + "' given twice");
    }
  }
  return flags;
}

/// Whole-string numeric parses (util::ParseU64/ParseF64): signs,
/// whitespace, trailing garbage, and overflow are errors, not zeros —
/// `--n -1` must not become 2^64-1 points.
Result<uint64_t> GetU(const FlagMap& f, const std::string& k, uint64_t dflt) {
  auto it = f.find(k);
  if (it == f.end()) return dflt;
  auto v = util::ParseU64(it->second);
  if (!v.ok()) {
    return Status::InvalidArgument("flag --" + k + " expects a non-negative "
                                   "integer, got '" + it->second + "'");
  }
  return v;
}

/// For flags consumed as uint32 (--k, --shards, --batch, ...): an
/// out-of-range value is an error, never a modular wrap (--k 2^32
/// must not silently become k=0).
Result<uint32_t> GetU32(const FlagMap& f, const std::string& k, uint32_t dflt) {
  E2_ASSIGN_OR_RETURN(const uint64_t v, GetU(f, k, dflt));
  if (v > UINT32_MAX) {
    return Status::InvalidArgument("flag --" + k + " value " +
                                   std::to_string(v) + " is out of range");
  }
  return static_cast<uint32_t>(v);
}

Result<double> GetD(const FlagMap& f, const std::string& k, double dflt) {
  auto it = f.find(k);
  if (it == f.end()) return dflt;
  auto v = util::ParseF64(it->second);
  if (!v.ok()) {
    return Status::InvalidArgument("flag --" + k + " expects a non-negative "
                                   "number, got '" + it->second + "'");
  }
  return v;
}

std::string GetS(const FlagMap& f, const std::string& k) {
  auto it = f.find(k);
  return it == f.end() ? std::string() : it->second;
}

int Fail(const Status& st) {
  std::fprintf(stderr, "error: %s\n", st.ToString().c_str());
  return 1;
}

#define CLI_ASSIGN(lhs, expr)               \
  auto lhs##_res = (expr);                  \
  if (!lhs##_res.ok()) return Fail(lhs##_res.status()); \
  auto lhs = std::move(lhs##_res).value();

int CmdGen(int argc, char** argv) {
  CLI_ASSIGN(flags, ParseFlags(argc, argv, {"dataset", "out", "n", "queries"}));
  const std::string name = GetS(flags, "dataset");
  const std::string out = GetS(flags, "out");
  if (name.empty() || out.empty()) {
    return Fail(Status::InvalidArgument("gen requires --dataset and --out"));
  }
  auto spec = data::GetDatasetSpec(name);
  if (!spec.ok()) return Fail(spec.status());
  CLI_ASSIGN(n, GetU(flags, "n", 0));
  CLI_ASSIGN(nq, GetU(flags, "queries", 100));
  auto gen = data::MakeDataset(*spec, n, nq);
  if (Status st = data::SaveFvecs(gen.base, out); !st.ok()) return Fail(st);
  if (Status st = data::SaveFvecs(gen.queries, out + ".queries"); !st.ok()) {
    return Fail(st);
  }
  std::printf("wrote %llu vectors to %s (+%llu queries to %s.queries)\n",
              static_cast<unsigned long long>(gen.base.n()), out.c_str(),
              static_cast<unsigned long long>(gen.queries.n()), out.c_str());
  return 0;
}

/// Shared build/query/serve preamble: the base set and the required
/// --index / --device flags.
struct Common {
  data::Dataset base;
  std::string index_path;
  std::string device_uri;
};

Result<Common> LoadCommon(const FlagMap& flags, const char* cmd) {
  Common c;
  const std::string base_path = GetS(flags, "base");
  c.index_path = GetS(flags, "index");
  c.device_uri = GetS(flags, "device");
  if (base_path.empty() || c.index_path.empty() || c.device_uri.empty()) {
    return Status::InvalidArgument(
        std::string(cmd) +
        " requires --base, --index, and --device URI (e.g. "
        "file:/tmp/img.bin, sim:cssd, mem:)");
  }
  E2_ASSIGN_OR_RETURN(const uint64_t max_n, GetU(flags, "max-n", 0));
  E2_ASSIGN_OR_RETURN(c.base, data::LoadVectorFile(base_path, max_n));
  return c;
}

/// The --shards / --probe-contexts engine shape shared by query/serve.
Result<SearchSpec> MakeSearchSpec(const FlagMap& flags) {
  SearchSpec spec;
  E2_ASSIGN_OR_RETURN(spec.shards, GetU32(flags, "shards", 1));
  E2_ASSIGN_OR_RETURN(const uint32_t contexts,
                      GetU32(flags, "probe-contexts", 32));
  spec.contexts_per_shard = std::max<uint32_t>(1, contexts);
  return spec;
}

int CmdBuild(int argc, char** argv) {
  CLI_ASSIGN(flags,
             ParseFlags(argc, argv, {"base", "index", "device", "rho", "c", "w",
                                     "gamma", "s", "max-n", "capacity"}));
  IndexSpec spec;
  CLI_ASSIGN(c, GetD(flags, "c", 2.0));
  CLI_ASSIGN(w, GetD(flags, "w", 4.0));
  CLI_ASSIGN(rho, GetD(flags, "rho", 0.25));
  CLI_ASSIGN(gamma, GetD(flags, "gamma", 1.0));
  CLI_ASSIGN(s, GetD(flags, "s", 4.0));
  CLI_ASSIGN(capacity, GetU(flags, "capacity", 0));
  CLI_ASSIGN(common, LoadCommon(flags, "build"));
  std::printf("loaded %llu x %u vectors\n",
              static_cast<unsigned long long>(common.base.n()),
              common.base.dim());
  spec.lsh.c = c;
  spec.lsh.w = w;
  spec.lsh.rho = rho;
  spec.lsh.gamma = gamma;
  spec.lsh.s_factor = s;
  spec.device_uri = common.device_uri;
  spec.device_capacity = capacity;

  const uint64_t t0 = util::NowNs();
  auto index = Index::Build(spec, std::move(common.base));
  if (!index.ok()) return Fail(index.status());
  std::printf("device: %s\nparams: m=%u L=%u radii=%u\n",
              (*index)->device()->name().c_str(), (*index)->params().m,
              (*index)->params().L, (*index)->params().num_radii());
  if (Status st = (*index)->Save(common.index_path); !st.ok()) return Fail(st);
  const auto sizes = (*index)->sizes();
  std::printf("built in %.1fs: %.1f MB on storage, %.1f MB DRAM metadata\n",
              static_cast<double>(util::NowNs() - t0) / 1e9,
              static_cast<double>(sizes.storage_bytes) / (1 << 20),
              static_cast<double>(sizes.dram_index_bytes) / (1 << 20));
  return 0;
}

int CmdQuery(int argc, char** argv) {
  CLI_ASSIGN(flags, ParseFlags(argc, argv,
                               {"base", "index", "device", "queries", "k",
                                "shards", "probe-contexts", "max-n"}));
  CLI_ASSIGN(k, GetU32(flags, "k", 10));
  CLI_ASSIGN(search, MakeSearchSpec(flags));
  CLI_ASSIGN(common, LoadCommon(flags, "query"));
  const std::string query_path = GetS(flags, "queries");
  if (query_path.empty()) {
    return Fail(Status::InvalidArgument("query requires --queries"));
  }
  auto queries = data::LoadVectorFile(query_path);
  if (!queries.ok()) return Fail(queries.status());

  auto index = Index::Open(common.index_path, OpenSpec{common.device_uri},
                           std::move(common.base));
  if (!index.ok()) return Fail(index.status());
  std::printf("device: %s\n", (*index)->device()->name().c_str());

  if (Status st = (*index)->Configure(search); !st.ok()) return Fail(st);

  auto batch = (*index)->SearchBatch(*queries, k);
  if (!batch.ok()) return Fail(batch.status());

  for (uint64_t q = 0; q < std::min<uint64_t>(queries->n(), 5); ++q) {
    std::printf("query %llu:", static_cast<unsigned long long>(q));
    for (const auto& nb : batch->results[q]) {
      std::printf(" %u(%.3f)", nb.id, nb.dist);
    }
    std::printf("\n");
  }
  std::printf(
      "%llu queries on %u shard(s), %.0f qps, %.1f I/Os per query, "
      "%.1f radii per query\n",
      static_cast<unsigned long long>(queries->n()), (*index)->num_shards(),
      batch->QueriesPerSecond(), batch->MeanIos(), batch->MeanRadii());
  return 0;
}

int CmdServe(int argc, char** argv) {
  CLI_ASSIGN(flags,
             ParseFlags(argc, argv,
                        {"base", "index", "device", "queries", "count", "rate",
                         "k", "shards", "batch", "max-wait-us", "deadline-us",
                         "probe-contexts", "max-n"}));
  ServeSpec serve;
  CLI_ASSIGN(k, GetU32(flags, "k", 10));
  CLI_ASSIGN(batch, GetU32(flags, "batch", 64));
  CLI_ASSIGN(max_wait, GetU(flags, "max-wait-us", 200));
  CLI_ASSIGN(deadline, GetU(flags, "deadline-us", 0));
  serve.k = k;
  serve.max_batch_size = batch;
  serve.max_wait_us = max_wait;
  serve.deadline_us = deadline;
  CLI_ASSIGN(search, MakeSearchSpec(flags));
  serve.search = search;

  CLI_ASSIGN(common, LoadCommon(flags, "serve"));

  // Query source: a file (cycled up to --count), else random base rows
  // (the generator case — a load without a recorded query log).
  const std::string query_path = GetS(flags, "queries");
  data::Dataset queries;
  if (!query_path.empty()) {
    auto loaded = data::LoadVectorFile(query_path);
    if (!loaded.ok()) return Fail(loaded.status());
    if (loaded->dim() != common.base.dim()) {
      return Fail(Status::InvalidArgument("query dimension mismatch"));
    }
    queries = std::move(*loaded);
  }
  CLI_ASSIGN(count, GetU(flags, "count",
                         queries.n() > 0 ? queries.n() : 1000));
  CLI_ASSIGN(rate, GetD(flags, "rate", 0.0));  // 0 = unthrottled

  auto index = Index::Open(common.index_path, OpenSpec{common.device_uri},
                           std::move(common.base));
  if (!index.ok()) return Fail(index.status());
  std::printf("device: %s\n", (*index)->device()->name().c_str());

  auto server = (*index)->Serve(serve);
  if (!server.ok()) return Fail(server.status());

  const data::Dataset& base = (*index)->base();
  util::Rng rng(17);
  const uint64_t interval_ns =
      rate > 0 ? static_cast<uint64_t>(1e9 / rate) : 0;
  const uint64_t t0 = util::NowNs();
  uint64_t submitted = 0;
  for (uint64_t i = 0; i < count; ++i) {
    if (interval_ns > 0) {
      // Sleep off most of the interval, spin only the last stretch: the
      // pacing thread shares the host with the shard workers it drives.
      const uint64_t deadline_ns = t0 + i * interval_ns;
      uint64_t now = util::NowNs();
      if (deadline_ns > now + 200000) {
        std::this_thread::sleep_for(
            std::chrono::nanoseconds(deadline_ns - now - 100000));
      }
      while (util::NowNs() < deadline_ns) {
      }
    }
    const float* vec = queries.n() > 0
                           ? queries.Row(i % queries.n())
                           : base.Row(rng.NextU64Below(base.n()));
    if ((*server)->Submit(vec).ok()) ++submitted;
  }
  (*server)->Close();
  (*server)->Wait();

  const core::StreamingSnapshot snap = (*server)->stats();
  std::printf(
      "served %llu/%llu queries on %u shard(s), k=%u, batch<=%u, "
      "max-wait %llu us\n",
      static_cast<unsigned long long>(snap.completed),
      static_cast<unsigned long long>(submitted), (*index)->num_shards(),
      serve.k, serve.max_batch_size,
      static_cast<unsigned long long>(serve.max_wait_us));
  std::printf("  offered rate: %s qps\n",
              rate > 0 ? std::to_string(static_cast<uint64_t>(rate)).c_str()
                       : "unthrottled");
  std::printf("  achieved:     %.0f qps overall, %.0f qps sustained window\n",
              snap.overall_qps, snap.sustained_qps);
  std::printf(
      "  latency (enqueue->completion): p50 %.2f ms, p95 %.2f ms, "
      "p99 %.2f ms, max %.2f ms\n",
      static_cast<double>(snap.p50_ns) / 1e6,
      static_cast<double>(snap.p95_ns) / 1e6,
      static_cast<double>(snap.p99_ns) / 1e6,
      static_cast<double>(snap.max_ns) / 1e6);
  std::printf("  micro-batches: %llu (mean size %.1f), failed queries: %llu\n",
              static_cast<unsigned long long>(snap.batches),
              snap.mean_batch_size,
              static_cast<unsigned long long>(snap.failed));
  if (serve.deadline_us > 0) {
    std::printf("  load shedding: %llu rejected past the %llu us deadline\n",
                static_cast<unsigned long long>(snap.rejected),
                static_cast<unsigned long long>(serve.deadline_us));
  }
  return 0;
}

// ---------------------------------------------------------------------------
// serve-daemon / query-remote: network serving over net::Daemon.
// ---------------------------------------------------------------------------

net::Daemon* g_daemon = nullptr;

/// SIGTERM/SIGINT land here; RequestStop is async-signal-safe.
void HandleStopSignal(int /*sig*/) {
  if (g_daemon != nullptr) g_daemon->RequestStop();
}

/// One `--also NAME@BASE@META@URI` value, split on '@'.
Result<std::array<std::string, 4>> SplitAlso(const std::string& value) {
  std::array<std::string, 4> parts;
  size_t start = 0;
  for (int i = 0; i < 3; ++i) {
    const size_t at = value.find('@', start);
    if (at == std::string::npos) {
      return Status::InvalidArgument(
          "--also expects NAME@BASE.fvecs@INDEX.meta@DEVICE_URI, got '" +
          value + "'");
    }
    parts[i] = value.substr(start, at - start);
    start = at + 1;
  }
  parts[3] = value.substr(start);
  for (const auto& p : parts) {
    if (p.empty()) {
      return Status::InvalidArgument("--also has an empty field in '" + value +
                                     "'");
    }
  }
  return parts;
}

Result<std::unique_ptr<Index>> OpenForServing(const std::string& base_path,
                                              const std::string& index_path,
                                              const std::string& device_uri,
                                              uint64_t max_n) {
  E2_ASSIGN_OR_RETURN(data::Dataset base,
                      data::LoadVectorFile(base_path, max_n));
  return Index::Open(index_path, OpenSpec{device_uri}, std::move(base));
}

int CmdServeDaemon(int argc, char** argv) {
  std::vector<std::pair<std::string, std::string>> repeated;
  CLI_ASSIGN(flags,
             ParseFlags(argc, argv,
                        {"base", "index", "device", "name", "listen", "port",
                         "host", "k", "shards", "batch", "max-wait-us",
                         "deadline-us", "probe-contexts", "max-n",
                         "queue-capacity", "max-frame-bytes",
                         "recv-timeout-ms", "send-timeout-ms",
                         "breaker-ratio", "breaker-min-rate"},
                        {"also"}, &repeated));

  net::DaemonOptions opts;
  opts.unix_path = GetS(flags, "listen");
  if (!opts.unix_path.empty()) {
    if (Status st = net::ValidateUnixPath(opts.unix_path); !st.ok()) {
      return Fail(st);
    }
  }
  const std::string host = GetS(flags, "host");
  if (!host.empty()) opts.tcp_host = host;
  if (flags.count("port") != 0) {
    // Strict range validation: 0, >65535, signs, and trailing garbage
    // are errors here, never a silent wrap into some bindable port.
    CLI_ASSIGN(port, GetU(flags, "port", 0));
    if (port == 0 || port > 65535) {
      return Fail(Status::InvalidArgument(
          "--port must be in 1..65535, got " + std::to_string(port)));
    }
    opts.tcp_port = static_cast<int>(port);
  }
  if (opts.unix_path.empty() && opts.tcp_port < 0) {
    return Fail(Status::InvalidArgument(
        "serve-daemon requires --listen SOCKET_PATH and/or --port PORT"));
  }
  CLI_ASSIGN(max_frame,
             GetU(flags, "max-frame-bytes", net::kDefaultMaxFrameBytes));
  if (max_frame < net::kHeaderBytes || max_frame > (1ull << 30)) {
    return Fail(Status::InvalidArgument("--max-frame-bytes must be in " +
                                        std::to_string(net::kHeaderBytes) +
                                        "..2^30"));
  }
  opts.max_frame_bytes = static_cast<uint32_t>(max_frame);
  CLI_ASSIGN(recv_timeout, GetU32(flags, "recv-timeout-ms", 0));
  CLI_ASSIGN(send_timeout, GetU32(flags, "send-timeout-ms", 0));
  opts.recv_timeout_ms = recv_timeout;
  opts.send_timeout_ms = send_timeout;
  CLI_ASSIGN(breaker_ratio, GetD(flags, "breaker-ratio", 0.0));
  CLI_ASSIGN(breaker_min_rate, GetD(flags, "breaker-min-rate", 5.0));
  if (breaker_ratio < 0.0 || breaker_ratio > 1.0) {
    return Fail(Status::InvalidArgument(
        "--breaker-ratio must be in 0..1 (0 disables the breaker)"));
  }
  opts.breaker_trip_ratio = breaker_ratio;
  opts.breaker_min_rate = breaker_min_rate;

  CLI_ASSIGN(k, GetU32(flags, "k", 10));
  CLI_ASSIGN(batch, GetU32(flags, "batch", 64));
  CLI_ASSIGN(max_wait, GetU(flags, "max-wait-us", 200));
  CLI_ASSIGN(deadline, GetU(flags, "deadline-us", 0));
  CLI_ASSIGN(queue_capacity, GetU(flags, "queue-capacity", 1024));
  opts.serve.k = k;
  opts.serve.max_batch_size = batch;
  opts.serve.max_wait_us = max_wait;
  opts.serve.deadline_us = deadline;
  opts.serve.queue_capacity = queue_capacity;
  CLI_ASSIGN(search, MakeSearchSpec(flags));
  opts.serve.search = search;
  CLI_ASSIGN(max_n, GetU(flags, "max-n", 0));

  net::Daemon daemon(std::move(opts));

  // Primary index from --base/--index/--device, named by --name.
  {
    const std::string base_path = GetS(flags, "base");
    const std::string index_path = GetS(flags, "index");
    const std::string device_uri = GetS(flags, "device");
    if (base_path.empty() || index_path.empty() || device_uri.empty()) {
      return Fail(Status::InvalidArgument(
          "serve-daemon requires --base, --index, and --device URI"));
    }
    std::string name = GetS(flags, "name");
    if (name.empty()) name = "default";
    auto index = OpenForServing(base_path, index_path, device_uri, max_n);
    if (!index.ok()) return Fail(index.status());
    std::printf("index '%s': %llu x %u vectors on %s\n", name.c_str(),
                static_cast<unsigned long long>((*index)->n()),
                (*index)->dim(), (*index)->device()->name().c_str());
    if (Status st = daemon.AddIndex(name, std::move(*index)); !st.ok()) {
      return Fail(st);
    }
  }
  // Additional indexes: --also NAME@BASE@META@URI, repeatable.
  for (const auto& [flag, value] : repeated) {
    (void)flag;
    CLI_ASSIGN(parts, SplitAlso(value));
    auto index = OpenForServing(parts[1], parts[2], parts[3], max_n);
    if (!index.ok()) return Fail(index.status());
    std::printf("index '%s': %llu x %u vectors on %s\n", parts[0].c_str(),
                static_cast<unsigned long long>((*index)->n()),
                (*index)->dim(), (*index)->device()->name().c_str());
    if (Status st = daemon.AddIndex(parts[0], std::move(*index)); !st.ok()) {
      return Fail(st);
    }
  }

  if (Status st = daemon.Start(); !st.ok()) return Fail(st);
  if (!GetS(flags, "listen").empty()) {
    std::printf("listening on unix:%s\n", GetS(flags, "listen").c_str());
  }
  if (daemon.tcp_port() > 0) {
    const std::string h = GetS(flags, "host");
    std::printf("listening on tcp:%s:%u\n",
                h.empty() ? "127.0.0.1" : h.c_str(), daemon.tcp_port());
  }
  std::fflush(stdout);

  g_daemon = &daemon;
  struct sigaction sa {};
  sa.sa_handler = HandleStopSignal;
  sigaction(SIGTERM, &sa, nullptr);
  sigaction(SIGINT, &sa, nullptr);

  daemon.Wait();  // returns only after in-flight requests drained
  g_daemon = nullptr;
  std::printf("daemon stopped: connections drained, indexes released\n");
  return 0;
}

int CmdQueryRemote(int argc, char** argv) {
  CLI_ASSIGN(flags, ParseFlags(argc, argv,
                               {"to", "index", "queries", "k", "nowait",
                                "stats", "health", "max-n", "timeout-ms",
                                "retries", "retry-backoff-ms"}));
  const std::string to = GetS(flags, "to");
  const std::string query_path = GetS(flags, "queries");
  if (to.empty() || query_path.empty()) {
    return Fail(Status::InvalidArgument(
        "query-remote requires --to unix:PATH|tcp:HOST:PORT and "
        "--queries q.fvecs"));
  }
  CLI_ASSIGN(k, GetU32(flags, "k", 10));
  CLI_ASSIGN(nowait, GetU32(flags, "nowait", 0));
  CLI_ASSIGN(want_stats, GetU32(flags, "stats", 0));
  CLI_ASSIGN(want_health, GetU32(flags, "health", 0));
  if (nowait > 1 || want_stats > 1 || want_health > 1) {
    return Fail(Status::InvalidArgument(
        "--nowait/--stats/--health expect 0 or 1"));
  }
  std::string name = GetS(flags, "index");
  if (name.empty()) name = "default";
  CLI_ASSIGN(max_n, GetU(flags, "max-n", 0));
  CLI_ASSIGN(queries, data::LoadVectorFile(query_path, max_n));

  net::ClientOptions copts;
  CLI_ASSIGN(timeout_ms, GetU32(flags, "timeout-ms", 0));
  CLI_ASSIGN(retries, GetU32(flags, "retries", 0));
  CLI_ASSIGN(retry_backoff, GetU32(flags, "retry-backoff-ms", 50));
  copts.recv_timeout_ms = timeout_ms;
  copts.max_retries = retries;
  copts.retry_backoff_ms = retry_backoff;

  auto client = net::Client::Connect(to, copts);
  if (!client.ok()) return Fail(client.status());
  if (Status st = (*client)->Ping(); !st.ok()) return Fail(st);

  // Chunk batches so huge query files never trip the frame cap.
  constexpr uint32_t kChunk = 256;
  std::vector<net::WireQueryResult> results;
  results.reserve(queries.n());
  const uint64_t t0 = util::NowNs();
  for (uint64_t off = 0; off < queries.n(); off += kChunk) {
    const uint32_t count = static_cast<uint32_t>(
        std::min<uint64_t>(kChunk, queries.n() - off));
    auto chunk = (*client)->SearchBatch(name, queries.Row(off), count,
                                        queries.dim(), k, nowait != 0);
    if (!chunk.ok()) return Fail(chunk.status());
    for (auto& r : *chunk) results.push_back(std::move(r));
  }
  const double secs = static_cast<double>(util::NowNs() - t0) / 1e9;

  // Same per-query lines as `query`, so local and remote runs diff
  // clean on the "query N:" prefix.
  for (uint64_t q = 0; q < std::min<uint64_t>(queries.n(), 5); ++q) {
    if (!results[q].status.ok()) {
      std::printf("query %llu: error %s\n",
                  static_cast<unsigned long long>(q),
                  results[q].status.ToString().c_str());
      continue;
    }
    std::printf("query %llu:", static_cast<unsigned long long>(q));
    for (const auto& nb : results[q].neighbors) {
      std::printf(" %u(%.3f)", nb.id, nb.dist);
    }
    std::printf("\n");
  }
  uint64_t ok_count = 0, rejected = 0, failed = 0;
  for (const auto& r : results) {
    if (r.status.ok()) {
      ++ok_count;
    } else if (r.status.code() == StatusCode::kResourceExhausted) {
      ++rejected;
    } else {
      ++failed;
    }
  }
  std::printf("%llu remote queries against '%s' at %s: %llu ok, %llu "
              "rejected, %llu failed, %.0f qps end-to-end\n",
              static_cast<unsigned long long>(results.size()), name.c_str(),
              to.c_str(), static_cast<unsigned long long>(ok_count),
              static_cast<unsigned long long>(rejected),
              static_cast<unsigned long long>(failed),
              secs > 0 ? static_cast<double>(results.size()) / secs : 0.0);
  if ((*client)->reconnects() > 0) {
    std::printf("  client reconnects: %llu\n",
                static_cast<unsigned long long>((*client)->reconnects()));
  }
  if (failed > 0) return 1;

  if (want_stats != 0) {
    auto stats = (*client)->Stats(name);
    if (!stats.ok()) return Fail(stats.status());
    std::printf("server stats for '%s': %llu completed, %llu failed, %llu "
                "rejected, queue depth %llu\n",
                name.c_str(),
                static_cast<unsigned long long>(stats->completed),
                static_cast<unsigned long long>(stats->failed),
                static_cast<unsigned long long>(stats->rejected),
                static_cast<unsigned long long>(stats->queue_depth));
    std::printf("  p50 %.2f ms, p95 %.2f ms, p99 %.2f ms; %.0f qps "
                "sustained; %llu device reads, %llu cache hits\n",
                static_cast<double>(stats->p50_ns) / 1e6,
                static_cast<double>(stats->p95_ns) / 1e6,
                static_cast<double>(stats->p99_ns) / 1e6,
                stats->sustained_qps,
                static_cast<unsigned long long>(stats->reads_completed),
                static_cast<unsigned long long>(stats->cache_hits));
    std::printf("  faults injected: %llu, device retries: %llu, retries "
                "exhausted: %llu\n",
                static_cast<unsigned long long>(stats->faults_injected),
                static_cast<unsigned long long>(stats->retries),
                static_cast<unsigned long long>(stats->retries_exhausted));
    std::printf("  updates applied: %llu, epochs published: %llu, staged "
                "bytes: %llu, update lag: %llu\n",
                static_cast<unsigned long long>(stats->updates_applied),
                static_cast<unsigned long long>(stats->epochs_published),
                static_cast<unsigned long long>(stats->update_staged_bytes),
                static_cast<unsigned long long>(stats->update_lag));
  }
  if (want_health != 0) {
    auto health = (*client)->Health();
    if (!health.ok()) return Fail(health.status());
    const char* state = health->state == 0   ? "ok"
                        : health->state == 1 ? "degraded"
                                             : "unhealthy";
    std::printf("daemon health: %s (error rate %.1f/s, shed rate %.1f/s, "
                "%llu shed total)\n",
                state, health->error_rate, health->shed_rate,
                static_cast<unsigned long long>(health->total_shed));
    if (health->state == 2) return 1;
  }
  return 0;
}

/// "17,42,99" -> {17, 42, 99}; any empty or non-numeric token is an error.
Result<std::vector<uint32_t>> ParseIdList(const std::string& flag,
                                          const std::string& value) {
  std::vector<uint32_t> ids;
  size_t start = 0;
  while (true) {
    const size_t comma = value.find(',', start);
    const std::string tok =
        comma == std::string::npos ? value.substr(start)
                                   : value.substr(start, comma - start);
    auto id = util::ParseU64(tok);
    if (!id.ok() || *id > UINT32_MAX) {
      return Status::InvalidArgument("flag --" + flag +
                                     " expects comma-separated u32 ids, got '" +
                                     value + "'");
    }
    ids.push_back(static_cast<uint32_t>(*id));
    if (comma == std::string::npos) break;
    start = comma + 1;
  }
  return ids;
}

int CmdUpdateRemote(int argc, char** argv) {
  CLI_ASSIGN(flags, ParseFlags(argc, argv,
                               {"to", "index", "insert", "remove", "restore",
                                "max-n", "timeout-ms", "retries",
                                "retry-backoff-ms"}));
  const std::string to = GetS(flags, "to");
  const std::string insert_path = GetS(flags, "insert");
  const std::string remove_list = GetS(flags, "remove");
  const std::string restore_list = GetS(flags, "restore");
  if (to.empty()) {
    return Fail(Status::InvalidArgument(
        "update-remote requires --to unix:PATH|tcp:HOST:PORT"));
  }
  if (insert_path.empty() && remove_list.empty() && restore_list.empty()) {
    return Fail(Status::InvalidArgument(
        "update-remote needs --insert rows.fvecs, --remove id[,id...], "
        "and/or --restore id[,id...]"));
  }
  std::string name = GetS(flags, "index");
  if (name.empty()) name = "default";

  net::ClientOptions copts;
  CLI_ASSIGN(timeout_ms, GetU32(flags, "timeout-ms", 0));
  CLI_ASSIGN(retries, GetU32(flags, "retries", 0));
  CLI_ASSIGN(retry_backoff, GetU32(flags, "retry-backoff-ms", 50));
  copts.recv_timeout_ms = timeout_ms;
  copts.max_retries = retries;
  copts.retry_backoff_ms = retry_backoff;

  auto client = net::Client::Connect(to, copts);
  if (!client.ok()) return Fail(client.status());
  if (Status st = (*client)->Ping(); !st.ok()) return Fail(st);

  if (!insert_path.empty()) {
    CLI_ASSIGN(max_n, GetU(flags, "max-n", 0));
    CLI_ASSIGN(rows, data::LoadVectorFile(insert_path, max_n));
    // Chunk like query-remote so huge files never trip the frame cap.
    constexpr uint32_t kChunk = 256;
    uint64_t inserted = 0, first_id = 0, epoch = 0;
    for (uint64_t off = 0; off < rows.n(); off += kChunk) {
      const uint32_t count =
          static_cast<uint32_t>(std::min<uint64_t>(kChunk, rows.n() - off));
      auto ack = (*client)->Insert(name, rows.Row(off), count, rows.dim());
      if (!ack.ok()) return Fail(ack.status());
      if (inserted == 0) first_id = ack->first_id;
      inserted += ack->count_applied;
      epoch = ack->epoch;
    }
    std::printf("inserted %llu rows into '%s': ids %llu..%llu, epoch %llu\n",
                static_cast<unsigned long long>(inserted), name.c_str(),
                static_cast<unsigned long long>(first_id),
                static_cast<unsigned long long>(first_id + inserted - 1),
                static_cast<unsigned long long>(epoch));
  }
  if (!remove_list.empty()) {
    CLI_ASSIGN(ids, ParseIdList("remove", remove_list));
    auto ack = (*client)->Remove(name, ids.data(),
                                 static_cast<uint32_t>(ids.size()));
    if (!ack.ok()) return Fail(ack.status());
    std::printf("removed %u ids from '%s', epoch %llu\n", ack->count_applied,
                name.c_str(), static_cast<unsigned long long>(ack->epoch));
  }
  if (!restore_list.empty()) {
    CLI_ASSIGN(ids, ParseIdList("restore", restore_list));
    auto ack = (*client)->Restore(name, ids.data(),
                                  static_cast<uint32_t>(ids.size()));
    if (!ack.ok()) return Fail(ack.status());
    std::printf("restored %u ids on '%s', epoch %llu\n", ack->count_applied,
                name.c_str(), static_cast<unsigned long long>(ack->epoch));
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    std::fprintf(
        stderr,
        "usage: %s {gen|build|query|serve|serve-daemon|query-remote|"
        "update-remote} --flag value ...\n"
        "  gen    --dataset SIFT --out data.fvecs [--n N] [--queries Q]\n"
        "  build  --base data.fvecs --index idx.bin --device URI\n"
        "         [--rho R] [--c C] [--w W] [--gamma G] [--s S] [--max-n N]\n"
        "  query  --base data.fvecs --index idx.bin --device URI "
        "--queries q.fvecs\n"
        "         [--k K] [--shards S] [--probe-contexts P] [--max-n N]\n"
        "  serve  --base data.fvecs --index idx.bin --device URI "
        "[--queries q.fvecs]\n"
        "         [--count N] [--rate QPS] [--k K] [--shards S] [--batch B]\n"
        "         [--max-wait-us W] [--deadline-us D]\n"
        "  serve-daemon  --base data.fvecs --index idx.bin --device URI\n"
        "         {--listen SOCKET_PATH | --port PORT [--host H]}\n"
        "         [--name NAME] [--also NAME@BASE@META@URI ...]\n"
        "         [--k K] [--shards S] [--batch B] [--max-wait-us W]\n"
        "         [--deadline-us D] [--queue-capacity N] "
        "[--max-frame-bytes N]\n"
        "         [--recv-timeout-ms MS] [--send-timeout-ms MS]\n"
        "         [--breaker-ratio R] [--breaker-min-rate QPS]\n"
        "         (SIGTERM/SIGINT drain in-flight queries, then exit 0)\n"
        "  query-remote  --to unix:PATH|tcp:HOST:PORT --queries q.fvecs\n"
        "         [--index NAME] [--k K] [--nowait 0|1] [--stats 0|1]\n"
        "         [--health 0|1] [--timeout-ms MS] [--retries N]\n"
        "         [--retry-backoff-ms MS] [--max-n N]\n"
        "  update-remote  --to unix:PATH|tcp:HOST:PORT [--index NAME]\n"
        "         [--insert rows.fvecs [--max-n N]] [--remove id[,id...]]\n"
        "         [--restore id[,id...]] [--timeout-ms MS] [--retries N]\n"
        "         (live mutations against a serving daemon; inserts become\n"
        "         searchable on the published epoch the ack reports)\n"
        "device URIs: mem: | sim:cssd|essd|xlfdd|hdd[*N][?iface=...] |\n"
        "  file:PATH[?direct=1&threads=N] | uring:PATH[?direct=1&sqpoll=1"
        "&fixed=1]\n"
        "  (+ ?capacity=SIZE, ?queue=N, ?queues=N, ?cache=SIZE,\n"
        "   ?fault=submit:P,complete:P,corrupt:P,stall:USEC[,seed:N],\n"
        "   ?retry=N[,backoff:USEC][,deadline:USEC] on any scheme;\n"
        "   queues=N caps native per-shard device queues, 0 forces the\n"
        "   router shim, fixed=1 [uring] registers engine arenas for\n"
        "   READ_FIXED, cache=SIZE adds a DRAM read cache, fault= injects\n"
        "   storage faults, retry= retries transient failures; build needs\n"
        "   a buffered device — serve the same image with direct=1)\n",
        argv[0]);
    return 1;
  }
  const std::string cmd = argv[1];
  if (cmd == "gen") return CmdGen(argc, argv);
  if (cmd == "build") return CmdBuild(argc, argv);
  if (cmd == "query") return CmdQuery(argc, argv);
  if (cmd == "serve") return CmdServe(argc, argv);
  if (cmd == "serve-daemon") return CmdServeDaemon(argc, argv);
  if (cmd == "query-remote") return CmdQueryRemote(argc, argv);
  if (cmd == "update-remote") return CmdUpdateRemote(argc, argv);
  std::fprintf(stderr,
               "unknown command: %s (expected gen|build|query|serve|"
               "serve-daemon|query-remote|update-remote)\n",
               cmd.c_str());
  return 1;
}
