// Image-descriptor search: the paper's motivating workload (SIFT-like
// byte vectors). Builds E2LSHoS through the e2lshos::Index facade on a
// simulated 4 x cSSD array behind SPDK (the device URI
// "sim:cssd*4?iface=spdk"), compares it against in-memory SRS at the
// same accuracy, and prints the paper's headline metrics: speedup, I/O
// count, DRAM footprint.
//
//   ./examples/image_search [--n N]
#include <cstdio>
#include <cstring>

#include "api/index.h"
#include "baselines/srs.h"
#include "data/ground_truth.h"
#include "data/registry.h"

using namespace e2lshos;

int main(int argc, char** argv) {
  uint64_t n = 60000;
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::strcmp(argv[i], "--n") == 0) n = std::stoull(argv[i + 1]);
  }

  // SIFT-like workload from the registry (128-dim byte-quantized
  // descriptors) with 100 held-out queries and exact ground truth.
  auto spec = data::GetDatasetSpec("SIFT");
  if (!spec.ok()) return 1;
  auto gen = data::MakeDataset(*spec, n, 100);
  const auto gt = data::GroundTruth::Compute(gen.base, gen.queries, 10);
  std::printf("SIFT-like corpus: %llu descriptors, 100 queries, top-10\n",
              static_cast<unsigned long long>(gen.base.n()));

  // E2LSHoS on 4 consumer SSDs striped behind SPDK, built and queried
  // through the facade (it owns the dataset copy, the stripe set, and
  // the index).
  IndexSpec index_spec;
  index_spec.lsh = spec->lsh;
  index_spec.device_uri = "sim:cssd*4?iface=spdk";
  auto index = Index::Build(index_spec, gen.base);
  if (!index.ok()) {
    std::fprintf(stderr, "build: %s\n", index.status().ToString().c_str());
    return 1;
  }
  SearchSpec search;
  search.contexts_per_shard = 64;
  search.inflight_per_shard = 512;
  if (!(*index)->Configure(search).ok()) return 1;
  auto batch = (*index)->SearchBatch(gen.queries, 10);
  if (!batch.ok()) return 1;
  const double os_ratio = data::MeanOverallRatio(gt, batch->results, 10);

  // In-memory SRS reference at a comparable verification budget.
  baselines::SrsConfig srs_cfg;
  srs_cfg.max_verify = gen.base.n() / 20;
  auto srs = baselines::Srs::Build(gen.base, srs_cfg);
  if (!srs.ok()) return 1;
  const auto srs_batch = (*srs)->SearchBatch(gen.queries, 10);
  const double srs_ratio = data::MeanOverallRatio(gt, srs_batch.results, 10);

  const auto sizes = (*index)->sizes();
  std::printf("\n%-28s %12s %12s\n", "", "E2LSHoS", "SRS (in-mem)");
  std::printf("%-28s %12.3f %12.3f\n", "overall ratio (1.0 = exact)", os_ratio,
              srs_ratio);
  std::printf("%-28s %12.0f %12.0f\n", "queries/second",
              batch->QueriesPerSecond(), srs_batch.QueriesPerSecond());
  std::printf("%-28s %12.1f %12s\n", "I/Os per query", batch->MeanIos(), "-");
  std::printf("%-28s %11.1fM %11.1fM\n", "index in DRAM",
              static_cast<double>(sizes.dram_index_bytes) / (1 << 20),
              static_cast<double>((*srs)->IndexMemoryBytes()) / (1 << 20));
  std::printf("%-28s %11.1fM %12s\n", "index on storage",
              static_cast<double>(sizes.storage_bytes) / (1 << 20), "-");
  std::printf(
      "\nE2LSHoS answers from storage at DRAM-economy comparable to SRS "
      "while keeping\nE2LSH's sublinear query time (speedup grows with "
      "corpus size).\n");
  return 0;
}
