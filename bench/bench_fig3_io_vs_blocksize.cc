// Reproduces Figure 3: average number of I/Os required to answer a query
// on the SIFT dataset for varying read block size B (128 B / 512 B /
// 4 KB / unlimited), across the accuracy range. Follows the paper's
// Fig. 3 accounting: 4-byte object entries, so B bytes hold B/4 objects,
// plus one hash-table I/O per probed bucket.
#include "common.h"

using namespace e2lshos;

int main(int argc, char** argv) {
  const auto args = bench::Args::Parse(argc, argv);
  const std::string name = args.dataset.empty() ? "SIFT" : args.dataset;
  auto spec = data::GetDatasetSpec(name);
  if (!spec.ok()) return 1;
  auto w = bench::MakeWorkload(*spec, args.EffectiveN(*spec), args.queries, 1);
  if (!w.ok()) return 1;
  auto index = e2lsh::InMemoryE2lsh::Build(w->gen.base, w->params);
  if (!index.ok()) return 1;

  const auto profile =
      bench::ProfileInMemoryIo(index->get(), *w, 1, bench::DefaultSFactors());

  bench::PrintHeader(
      "Figure 3: avg I/Os per query vs accuracy for varying block size B (" +
          name + ")",
      {"s_factor", "overall ratio", "B=128 (32/io)", "B=512 (128/io)",
       "B=4K (512/io)", "B=inf"});
  for (const auto& p : profile) {
    bench::PrintRow({bench::Fmt(p.s_factor, 1), bench::Fmt(p.ratio, 3),
                     bench::Fmt(p.IoAt(32), 1), bench::Fmt(p.IoAt(128), 1),
                     bench::Fmt(p.IoAt(512), 1), bench::Fmt(p.IoInf(), 1)});
  }
  std::printf(
      "\nExpected shape (paper): more I/Os at higher accuracy (smaller "
      "ratio);\nsmaller B needs more I/Os; the B=512 curve sits close to "
      "B=inf because\nmost buckets fit a single block.\n");
  return 0;
}
