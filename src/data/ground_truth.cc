#include "data/ground_truth.h"

#include <thread>

#include "util/distance.h"
#include "util/thread_pool.h"

namespace e2lshos::data {

GroundTruth GroundTruth::Compute(const Dataset& base, const Dataset& queries,
                                 uint32_t k, uint32_t threads) {
  GroundTruth gt;
  gt.k_ = k;
  gt.exact_.resize(queries.n());
  if (threads == 0) {
    threads = std::max(1u, std::thread::hardware_concurrency());
  }
  util::ThreadPool pool(threads);
  const uint32_t d = base.dim();
  for (uint64_t q = 0; q < queries.n(); ++q) {
    pool.Submit([&, q] {
      util::TopK topk(k);
      const float* qv = queries.Row(q);
      for (uint64_t i = 0; i < base.n(); ++i) {
        topk.Push(static_cast<uint32_t>(i),
                  std::sqrt(util::SquaredL2(base.Row(i), qv, d)));
      }
      gt.exact_[q] = topk.SortedResults();
    });
  }
  pool.Wait();
  return gt;
}

double GroundTruth::OverallRatio(uint64_t q, const std::vector<util::Neighbor>& found,
                                 uint32_t k) const {
  const auto& exact = exact_[q];
  const uint32_t kk = std::min<uint32_t>(k, static_cast<uint32_t>(exact.size()));
  if (kk == 0) return 1.0;
  double sum = 0.0;
  // Penalty ratio for unanswered slots: worst exact distance is a benign
  // stand-in for "a random point was returned".
  const double penalty = 10.0;
  for (uint32_t i = 0; i < kk; ++i) {
    const double opt = exact[i].dist;
    if (i >= found.size()) {
      sum += penalty;
      continue;
    }
    const double got = found[i].dist;
    if (opt <= 1e-12) {
      sum += (got <= 1e-12) ? 1.0 : penalty;
    } else {
      sum += got / opt;
    }
  }
  return sum / kk;
}

double MeanOverallRatio(const GroundTruth& gt,
                        const std::vector<std::vector<util::Neighbor>>& answers,
                        uint32_t k) {
  if (answers.empty()) return 0.0;
  double sum = 0.0;
  for (uint64_t q = 0; q < answers.size(); ++q) {
    sum += gt.OverallRatio(q, answers[q], k);
  }
  return sum / static_cast<double>(answers.size());
}

}  // namespace e2lshos::data
