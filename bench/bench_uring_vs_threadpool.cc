// Apples-to-apples random-read sweep: the same backing file served by
// the pread-thread-pool FileDevice and the io_uring UringDevice, across
// queue depth x block size. This is the measurement behind the ROADMAP
// claim that the thread hop caps achievable IOPS: the thread pool
// plateaus near (threads / wakeup latency) while the uring backend
// scales with the device until the submission path saturates a core.
//
// Flags (beyond the common set): --file-mb N (working set, default 256),
// --threads T (FileDevice pool width, default 4), --ms M (per-point
// duration), --direct (O_DIRECT on both backends), --sqpoll (kernel SQ
// polling for the uring side). --json PATH emits one row per point.
//
// Where io_uring is unavailable (old kernel, seccomp filter, or a build
// without the headers) the uring points report "skipped" and the bench
// still exits 0 — CI can always run it.
#include "common.h"

#include <cstdio>

#include "storage/file_device.h"
#include "storage/uring_device.h"
#include "util/aligned_buffer.h"

using namespace e2lshos;

namespace {

uint64_t FlagU(int argc, char** argv, const std::string& name, uint64_t dflt) {
  for (int i = 1; i + 1 < argc; ++i) {
    if (argv[i] == "--" + name) return std::stoull(argv[i + 1]);
  }
  return dflt;
}

bool FlagB(int argc, char** argv, const std::string& name) {
  for (int i = 1; i < argc; ++i) {
    if (argv[i] == "--" + name) return true;
  }
  return false;
}

}  // namespace

int main(int argc, char** argv) {
  const auto args = bench::Args::Parse(argc, argv);
  auto json = args.OpenJson();
  const uint64_t file_mb = FlagU(argc, argv, "file-mb", args.fast ? 64 : 256);
  const uint64_t ms = FlagU(argc, argv, "ms", args.fast ? 150 : 400);
  bool direct = FlagB(argc, argv, "direct");
  bool sqpoll = FlagB(argc, argv, "sqpoll");
  uint32_t threads = 4;
  std::string path = "/tmp/e2lshos_uring_vs_threadpool.img";
  // This bench runs BOTH backends over one file, so --device only
  // contributes the backing path and the direct/sqpoll/threads options;
  // a malformed URI must fail loudly, not silently fall back to /tmp.
  if (!args.device.empty()) {
    auto uri = storage::ParseDeviceUri(args.device);
    if (!uri.ok()) {
      std::fprintf(stderr, "--device: %s\n", uri.status().ToString().c_str());
      return 1;
    }
    if (uri->scheme != storage::DeviceUri::Scheme::kFile &&
        uri->scheme != storage::DeviceUri::Scheme::kUring) {
      std::fprintf(stderr,
                   "--device must be a file: or uring: URI for this bench\n");
      return 1;
    }
    if (!uri->path.empty()) path = uri->path;
    direct |= uri->direct_io;
    sqpoll |= uri->sqpoll;
    threads = uri->io_threads;
  }
  threads = static_cast<uint32_t>(FlagU(argc, argv, "threads", threads));
  const uint64_t bytes = file_mb << 20;

  const std::vector<uint32_t> depths = {1, 4, 8, 16, 32, 64, 128, 256};
  const std::vector<uint32_t> blocks = {512, 4096, 16384};

  // Build the shared backing file once (buffered writes).
  {
    storage::FileDevice::Options opt;
    opt.capacity = bytes;
    opt.io_threads = 1;
    auto writer = storage::FileDevice::Create(path, opt);
    if (!writer.ok()) {
      std::fprintf(stderr, "cannot create %s: %s\n", path.c_str(),
                   writer.status().ToString().c_str());
      return 1;
    }
    if (!bench::FillDeviceWithNoise(writer->get(), bytes).ok()) {
      std::fprintf(stderr, "fill failed\n");
      return 1;
    }
  }

  const bool uring_ok = storage::UringDevice::Available();
  if (!uring_ok) {
    std::printf(
        "io_uring unavailable on this host: uring rows report skipped\n");
  }

  bench::PrintHeader(
      "UringDevice vs FileDevice random-read IOPS (" +
          std::to_string(file_mb) + " MiB file" +
          std::string(direct ? ", O_DIRECT" : ", buffered") + ")",
      {"block B", "QD", "file kIOPS", "uring kIOPS", "uring/file",
       "file p99 us", "uring p99 us"});

  for (const uint32_t block : blocks) {
    for (const uint32_t depth : depths) {
      bench::IopsBenchOptions opt;
      opt.block_bytes = block;
      opt.queue_depth = depth;
      opt.duration_ms = ms;

      bench::MeasuredIops file_pt;
      {
        storage::FileDevice::Options fopt;
        fopt.io_threads = threads;
        fopt.direct_io = direct;
        fopt.queue_capacity = std::max<uint32_t>(depth, 64);
        auto dev = storage::FileDevice::Open(path, fopt);
        if (!dev.ok()) {
          std::fprintf(stderr, "file open failed: %s\n",
                       dev.status().ToString().c_str());
          return 1;
        }
        auto pt = bench::MeasureRandomReadIops(dev->get(), opt);
        if (!pt.ok()) {
          std::fprintf(stderr, "file sweep failed: %s\n",
                       pt.status().ToString().c_str());
          return 1;
        }
        file_pt = *pt;
      }

      bool uring_point_ok = false;
      bench::MeasuredIops uring_pt;
      std::string uring_note = "skipped";
      if (uring_ok) {
        storage::UringDevice::Options uopt;
        uopt.direct_io = direct;
        uopt.sqpoll = sqpoll;
        uopt.queue_capacity = std::max<uint32_t>(depth, 64);
        auto dev = storage::UringDevice::Open(path, uopt);
        if (dev.ok()) {
          // Pin the destination arena: reads go out as READ_FIXED.
          util::AlignedBuffer arena(static_cast<size_t>(depth) * block, 4096);
          bench::IopsBenchOptions fixed = opt;
          if ((*dev)
                  ->RegisterBuffers({{arena.data(), arena.size()}})
                  .ok()) {
            fixed.arena = arena.data();
            fixed.arena_bytes = arena.size();
          }
          auto pt = bench::MeasureRandomReadIops(dev->get(), fixed);
          if (pt.ok()) {
            uring_pt = *pt;
            uring_point_ok = true;
          } else {
            uring_note = pt.status().ToString();
          }
        } else {
          uring_note = dev.status().ToString();
        }
      }

      bench::PrintRow(
          {std::to_string(block), std::to_string(depth),
           bench::Fmt(file_pt.kiops, 1),
           uring_point_ok ? bench::Fmt(uring_pt.kiops, 1) : uring_note,
           uring_point_ok && file_pt.kiops > 0
               ? bench::Fmt(uring_pt.kiops / file_pt.kiops, 2)
               : "-",
           bench::Fmt(file_pt.p99_lat_us, 0),
           uring_point_ok ? bench::Fmt(uring_pt.p99_lat_us, 0) : "-"});
      if (json != nullptr) {
        util::JsonRow row;
        row.Set("bench", "uring_vs_threadpool")
            .Set("block_bytes", static_cast<uint64_t>(block))
            .Set("queue_depth", static_cast<uint64_t>(depth))
            .Set("direct", static_cast<uint64_t>(direct ? 1 : 0))
            .Set("file_kiops", file_pt.kiops)
            .Set("file_p99_us", file_pt.p99_lat_us)
            .Set("uring_available",
                 static_cast<uint64_t>(uring_point_ok ? 1 : 0));
        if (uring_point_ok) {
          row.Set("uring_kiops", uring_pt.kiops)
              .Set("uring_p99_us", uring_pt.p99_lat_us)
              .Set("speedup", file_pt.kiops > 0
                                  ? uring_pt.kiops / file_pt.kiops
                                  : 0.0);
        }
        json->Write(row);
      }
    }
  }

  std::remove(path.c_str());
  std::printf(
      "\nExpected shape: at QD>=32 the uring backend meets or beats the\n"
      "%u-thread pread pool, whose IOPS is capped by thread count and\n"
      "wakeup latency rather than the device.\n",
      threads);
  return 0;
}
