// Reproduces the paper's Sec. 7 endurance discussion in numbers: bytes
// written to storage for (a) a full index build and (b) per-object online
// insertion, translated into drive-life consumption for a typical
// consumer SSD endurance rating (~1.2 PB TBW for a 2 TB class drive).
#include "common.h"

#include "core/updater.h"

using namespace e2lshos;

int main(int argc, char** argv) {
  const auto args = bench::Args::Parse(argc, argv);
  const std::string name = args.dataset.empty() ? "SIFT" : args.dataset;
  auto spec = data::GetDatasetSpec(name);
  if (!spec.ok()) return 1;
  auto w = bench::MakeWorkload(*spec, args.EffectiveN(*spec), args.queries, 1);
  if (!w.ok()) return 1;

  auto dev = storage::MemoryDevice::Create(8ULL << 30);
  if (!dev.ok()) return 1;
  auto idx = core::IndexBuilder::Build(w->gen.base, w->params, dev->get());
  if (!idx.ok()) return 1;
  const uint64_t build_bytes = dev->get()->stats().bytes_written;

  // Online inserts: append 200 fresh objects.
  core::IndexUpdater updater(idx->get());
  data::Dataset& base = w->gen.base;
  const uint32_t start = static_cast<uint32_t>(base.n());
  util::Rng rng(4242);
  std::vector<float> p(base.dim());
  uint32_t inserted = 0;
  for (uint32_t i = 0; i < 200; ++i) {
    const float* src = base.Row(rng.NextU64Below(start));
    for (uint32_t j = 0; j < base.dim(); ++j) {
      p[j] = src[j] + static_cast<float>(rng.Gaussian(0.0, 0.01));
    }
    base.Append(p.data());
    if (!updater.Insert(base, start + i).ok()) break;
    ++inserted;
  }
  const double per_insert =
      inserted ? static_cast<double>(updater.bytes_written()) / inserted : 0;

  constexpr double kTbwBytes = 1.2e15;  // typical 2 TB-class cSSD warranty
  bench::PrintHeader("Sec. 7: storage endurance accounting (" + name + ")",
                     {"operation", "bytes written", "ops per drive life"});
  bench::PrintRow({"full index build (n=" + std::to_string(w->n()) + ")",
                   bench::FmtBytes(build_bytes),
                   bench::Fmt(kTbwBytes / static_cast<double>(build_bytes), 0)});
  bench::PrintRow({"single object insert",
                   bench::FmtBytes(static_cast<uint64_t>(per_insert)),
                   bench::Fmt(kTbwBytes / std::max(1.0, per_insert), 0)});
  std::printf(
      "\nExpected shape (paper Sec. 7): \"the impact of object insertion "
      "and deletion\nis small\" — single inserts cost ~L*r blocks; full "
      "rebuilds are the expensive\noperation to do sparingly. Deletions "
      "are DRAM tombstones: zero storage writes.\n");
  return 0;
}
