#include "storage/io_align.h"

#include <fcntl.h>
#include <sys/ioctl.h>
#include <sys/stat.h>

#include <algorithm>

#if defined(__linux__)
#include <linux/fs.h>  // BLKSSZGET
#endif

#include "storage/block_device.h"

namespace e2lshos::storage {

DioAlignment ProbeDioAlignment(int fd) {
  DioAlignment out;
  if (fd < 0) return out;

#if defined(__linux__) && defined(STATX_DIOALIGN)
  struct statx stx;
  if (::statx(fd, "", AT_EMPTY_PATH, STATX_DIOALIGN, &stx) == 0 &&
      (stx.stx_mask & STATX_DIOALIGN) != 0 && stx.stx_dio_offset_align > 0) {
    out.offset_align = stx.stx_dio_offset_align;
    out.mem_align = stx.stx_dio_mem_align;
    out.probed = true;
    return out;
  }
#endif

#if defined(__linux__) && defined(BLKSSZGET)
  struct stat st;
  if (::fstat(fd, &st) == 0 && S_ISBLK(st.st_mode)) {
    int sector_size = 0;
    if (::ioctl(fd, BLKSSZGET, &sector_size) == 0 && sector_size > 0) {
      out.offset_align = static_cast<uint32_t>(sector_size);
      out.mem_align = static_cast<uint32_t>(sector_size);
      out.probed = true;
      return out;
    }
  }
#endif

  return out;
}

uint32_t EffectiveDioAlignment(const DioAlignment& alignment) {
  // The layout never places anything at sub-sector granularity, so 512
  // is the floor even when the kernel would accept less; a 4Kn drive
  // raises it.
  return std::max({alignment.offset_align, alignment.mem_align, kSectorBytes});
}

}  // namespace e2lshos::storage
