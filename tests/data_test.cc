// Tests for dataset generation, ground truth, accuracy metrics, and
// hardness estimation.
#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "data/dataset.h"
#include "data/generators.h"
#include "data/ground_truth.h"
#include "data/metrics.h"
#include "data/registry.h"
#include "util/distance.h"

namespace e2lshos::data {
namespace {

TEST(Dataset, AppendAndRowAccess) {
  Dataset ds("t", 3);
  const float a[] = {1, 2, 3};
  const float b[] = {4, 5, 6};
  ds.Append(a);
  ds.Append(b);
  EXPECT_EQ(ds.n(), 2u);
  EXPECT_EQ(ds.Row(1)[2], 6.f);
  EXPECT_EQ(ds.SizeBytes(), 6 * sizeof(float));
}

TEST(Dataset, XMaxIsLargestAbsoluteCoordinate) {
  Dataset ds("t", 2);
  const float a[] = {1.5f, -7.25f};
  ds.Append(a);
  EXPECT_FLOAT_EQ(ds.XMax(), 7.25f);
}

TEST(Dataset, SplitTailMovesRows) {
  Dataset ds("t", 2);
  for (int i = 0; i < 10; ++i) {
    const float p[] = {static_cast<float>(i), 0.f};
    ds.Append(p);
  }
  auto tail = ds.SplitTail(3);
  ASSERT_TRUE(tail.ok());
  EXPECT_EQ(ds.n(), 7u);
  EXPECT_EQ(tail->n(), 3u);
  EXPECT_EQ(tail->Row(0)[0], 7.f);
  EXPECT_FALSE(ds.SplitTail(100).ok());
}

TEST(Generators, ProducesRequestedShape) {
  GeneratorSpec spec;
  spec.kind = GeneratorKind::kClustered;
  spec.dim = 16;
  spec.num_clusters = 4;
  auto gen = Generate("shape", 500, 50, spec);
  EXPECT_EQ(gen.base.n(), 500u);
  EXPECT_EQ(gen.queries.n(), 50u);
  EXPECT_EQ(gen.base.dim(), 16u);
}

TEST(Generators, DeterministicForSeed) {
  GeneratorSpec spec;
  spec.dim = 8;
  spec.seed = 42;
  auto a = Generate("a", 100, 10, spec);
  auto b = Generate("b", 100, 10, spec);
  for (uint64_t i = 0; i < 100; ++i) {
    for (uint32_t j = 0; j < 8; ++j) {
      EXPECT_EQ(a.base.Row(i)[j], b.base.Row(i)[j]);
    }
  }
}

TEST(Generators, ByteQuantizeSnapsToGrid) {
  GeneratorSpec spec;
  spec.kind = GeneratorKind::kUniform;
  spec.dim = 4;
  spec.scale = 10.0;
  spec.byte_quantize = true;
  auto gen = Generate("q", 200, 10, spec);
  const double step = 10.0 / 255.0;
  std::set<int> levels;
  for (uint64_t i = 0; i < gen.base.n(); ++i) {
    for (uint32_t j = 0; j < 4; ++j) {
      const double v = gen.base.Row(i)[j];
      const double q = v / step;
      EXPECT_NEAR(q, std::round(q), 1e-3);
      levels.insert(static_cast<int>(std::round(q)));
    }
  }
  EXPECT_GT(levels.size(), 50u);  // uses a good chunk of the 256-level grid
}

TEST(Generators, UniformStaysInRange) {
  GeneratorSpec spec;
  spec.kind = GeneratorKind::kUniform;
  spec.dim = 8;
  spec.scale = 3.0;
  auto gen = Generate("u", 500, 10, spec);
  for (uint64_t i = 0; i < gen.base.n(); ++i) {
    for (uint32_t j = 0; j < 8; ++j) {
      EXPECT_GE(gen.base.Row(i)[j], 0.f);
      EXPECT_LT(gen.base.Row(i)[j], 3.f);
    }
  }
}

TEST(GroundTruth, MatchesNaiveScan) {
  GeneratorSpec spec;
  spec.dim = 12;
  spec.seed = 5;
  auto gen = Generate("gt", 800, 20, spec);
  const auto gt = GroundTruth::Compute(gen.base, gen.queries, 5, 2);
  ASSERT_EQ(gt.num_queries(), 20u);

  for (uint64_t q = 0; q < 20; ++q) {
    // Naive: full sort.
    std::vector<util::Neighbor> all;
    for (uint64_t i = 0; i < gen.base.n(); ++i) {
      all.push_back({static_cast<uint32_t>(i),
                     std::sqrt(util::SquaredL2(gen.base.Row(i),
                                               gen.queries.Row(q), 12))});
    }
    std::sort(all.begin(), all.end());
    const auto& got = gt.ForQuery(q);
    ASSERT_EQ(got.size(), 5u);
    for (int i = 0; i < 5; ++i) {
      EXPECT_EQ(got[i].id, all[i].id);
      EXPECT_FLOAT_EQ(got[i].dist, all[i].dist);
    }
  }
}

TEST(GroundTruth, ResultsSortedAscending) {
  GeneratorSpec spec;
  spec.dim = 6;
  auto gen = Generate("s", 300, 10, spec);
  const auto gt = GroundTruth::Compute(gen.base, gen.queries, 10, 1);
  for (uint64_t q = 0; q < 10; ++q) {
    const auto& ex = gt.ForQuery(q);
    for (size_t i = 1; i < ex.size(); ++i) EXPECT_GE(ex[i].dist, ex[i - 1].dist);
  }
}

TEST(OverallRatio, ExactAnswerIsOne) {
  GeneratorSpec spec;
  spec.dim = 6;
  auto gen = Generate("r", 300, 10, spec);
  const auto gt = GroundTruth::Compute(gen.base, gen.queries, 3, 1);
  for (uint64_t q = 0; q < 10; ++q) {
    EXPECT_DOUBLE_EQ(gt.OverallRatio(q, gt.ForQuery(q), 3), 1.0);
  }
}

TEST(OverallRatio, WorseAnswersScoreHigher) {
  GeneratorSpec spec;
  spec.dim = 6;
  auto gen = Generate("r2", 300, 5, spec);
  const auto gt = GroundTruth::Compute(gen.base, gen.queries, 10, 1);
  for (uint64_t q = 0; q < 5; ++q) {
    // Report neighbors 5..7 as if they were the top-3.
    const auto& ex = gt.ForQuery(q);
    std::vector<util::Neighbor> shifted(ex.begin() + 5, ex.begin() + 8);
    EXPECT_GT(gt.OverallRatio(q, shifted, 3), 1.0);
  }
}

TEST(OverallRatio, MissingResultsPenalized) {
  GeneratorSpec spec;
  spec.dim = 6;
  auto gen = Generate("r3", 200, 3, spec);
  const auto gt = GroundTruth::Compute(gen.base, gen.queries, 3, 1);
  const double r = gt.OverallRatio(0, {}, 3);
  EXPECT_GT(r, 5.0);
}

TEST(Metrics, GaussHarderThanClustered) {
  // Single Gaussian blob (GAUSS-like) must show smaller RC and larger LID
  // than a tightly clustered set, reproducing the Table 1 hardness order.
  GeneratorSpec hard;
  hard.kind = GeneratorKind::kGaussian;
  hard.dim = 64;
  hard.scale = 0.3;
  hard.seed = 1;
  auto hard_data = Generate("hard", 3000, 50, hard);

  GeneratorSpec easy;
  easy.kind = GeneratorKind::kClustered;
  easy.dim = 64;
  easy.num_clusters = 50;
  easy.cluster_std = 0.05;
  easy.center_spread = 3.0;
  easy.seed = 2;
  auto easy_data = Generate("easy", 3000, 50, easy);

  const auto gt_hard = GroundTruth::Compute(hard_data.base, hard_data.queries, 20, 1);
  const auto gt_easy = GroundTruth::Compute(easy_data.base, easy_data.queries, 20, 1);
  const auto m_hard = EstimateHardness(hard_data.base, hard_data.queries, gt_hard);
  const auto m_easy = EstimateHardness(easy_data.base, easy_data.queries, gt_easy);

  EXPECT_LT(m_hard.rc, m_easy.rc);
  EXPECT_GT(m_hard.lid, m_easy.lid);
  EXPECT_GT(m_easy.rc, 1.5);
  EXPECT_GT(m_hard.rc, 0.9);  // RC is >= ~1 by construction
}

TEST(Registry, HasAllEightPaperDatasets) {
  const auto all = PaperDatasets();
  ASSERT_EQ(all.size(), 8u);
  const char* names[] = {"MSONG", "SIFT", "GIST", "RAND",
                         "GLOVE", "GAUSS", "MNIST", "BIGANN"};
  for (int i = 0; i < 8; ++i) EXPECT_EQ(all[i].name, names[i]);
  // Dimensions straight from Table 1.
  EXPECT_EQ(all[0].gen.dim, 420u);
  EXPECT_EQ(all[1].gen.dim, 128u);
  EXPECT_EQ(all[2].gen.dim, 960u);
  EXPECT_EQ(all[3].gen.dim, 100u);
  EXPECT_EQ(all[4].gen.dim, 100u);
  EXPECT_EQ(all[5].gen.dim, 512u);
  EXPECT_EQ(all[6].gen.dim, 784u);
  EXPECT_EQ(all[7].gen.dim, 128u);
}

TEST(Registry, LookupByName) {
  auto sift = GetDatasetSpec("SIFT");
  ASSERT_TRUE(sift.ok());
  EXPECT_EQ(sift->gen.dim, 128u);
  EXPECT_TRUE(sift->gen.byte_quantize);
  EXPECT_FALSE(GetDatasetSpec("NOPE").ok());
}

TEST(Registry, MakeDatasetHonorsOverrides) {
  auto spec = GetDatasetSpec("RAND");
  ASSERT_TRUE(spec.ok());
  auto gen = MakeDataset(*spec, 1234, 17);
  EXPECT_EQ(gen.base.n(), 1234u);
  EXPECT_EQ(gen.queries.n(), 17u);
}

TEST(Registry, NnDistancesLandInRadiusLadder) {
  // The generators must place mean NN distances within the searchable
  // ladder (between 1 and ~16), else every query degenerates to the
  // first or last rung.
  for (const char* name : {"SIFT", "RAND", "GLOVE"}) {
    auto spec = GetDatasetSpec(name);
    ASSERT_TRUE(spec.ok());
    auto gen = MakeDataset(*spec, 4000, 30);
    const auto gt = GroundTruth::Compute(gen.base, gen.queries, 1, 1);
    double mean_nn = 0;
    for (uint64_t q = 0; q < 30; ++q) mean_nn += gt.ForQuery(q)[0].dist;
    mean_nn /= 30;
    EXPECT_GT(mean_nn, 0.5) << name;
    EXPECT_LT(mean_nn, 16.0) << name;
  }
}

}  // namespace
}  // namespace e2lshos::data
