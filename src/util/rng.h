// Deterministic, seedable random number generation.
//
// All randomized components of the library (hash functions, dataset
// generators, workloads) take an explicit seed so that every experiment is
// exactly reproducible. We use xoshiro256** as the core generator with a
// SplitMix64 seeder, plus Box-Muller Gaussians (cached spare).
#pragma once

#include <cmath>
#include <cstdint>

namespace e2lshos::util {

/// \brief SplitMix64: used to expand a single 64-bit seed into generator
/// state; also a decent standalone mixer.
inline uint64_t SplitMix64(uint64_t& state) {
  uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// \brief xoshiro256** PRNG. Fast, high quality, 2^256-1 period.
class Rng {
 public:
  explicit Rng(uint64_t seed = 0x1234abcd5678ef90ULL) { Seed(seed); }

  void Seed(uint64_t seed) {
    uint64_t sm = seed;
    for (auto& si : s_) si = SplitMix64(sm);
    have_spare_ = false;
  }

  uint64_t NextU64() {
    const uint64_t result = Rotl(s_[1] * 5, 7) * 9;
    const uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = Rotl(s_[3], 45);
    return result;
  }

  /// Uniform in [0, n). n must be > 0.
  uint64_t NextU64Below(uint64_t n) {
    // Lemire's multiply-shift rejection method.
    uint64_t x = NextU64();
    __uint128_t m = static_cast<__uint128_t>(x) * n;
    uint64_t l = static_cast<uint64_t>(m);
    if (l < n) {
      uint64_t t = (0 - n) % n;
      while (l < t) {
        x = NextU64();
        m = static_cast<__uint128_t>(x) * n;
        l = static_cast<uint64_t>(m);
      }
    }
    return static_cast<uint64_t>(m >> 64);
  }

  uint32_t NextU32() { return static_cast<uint32_t>(NextU64() >> 32); }

  /// Uniform double in [0, 1).
  double NextDouble() {
    return static_cast<double>(NextU64() >> 11) * 0x1.0p-53;
  }

  /// Uniform float in [0, 1).
  float NextFloat() {
    return static_cast<float>(NextU64() >> 40) * 0x1.0p-24f;
  }

  /// Uniform double in [lo, hi).
  double Uniform(double lo, double hi) { return lo + (hi - lo) * NextDouble(); }

  /// Standard normal via Box-Muller with a cached spare.
  double Gaussian() {
    if (have_spare_) {
      have_spare_ = false;
      return spare_;
    }
    double u1, u2;
    do {
      u1 = NextDouble();
    } while (u1 <= 1e-300);
    u2 = NextDouble();
    const double r = std::sqrt(-2.0 * std::log(u1));
    const double theta = 2.0 * M_PI * u2;
    spare_ = r * std::sin(theta);
    have_spare_ = true;
    return r * std::cos(theta);
  }

  /// N(mean, stddev^2).
  double Gaussian(double mean, double stddev) {
    return mean + stddev * Gaussian();
  }

  /// Derive an independent child generator (for parallel streams).
  Rng Fork() { return Rng(NextU64() ^ 0x5851f42d4c957f2dULL); }

 private:
  static uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }
  uint64_t s_[4];
  double spare_ = 0.0;
  bool have_spare_ = false;
};

}  // namespace e2lshos::util
