#include "common.h"

#include <algorithm>
#include <cstdio>
#include <cstring>

#include "model/cost_model.h"
#include "util/clock.h"

namespace e2lshos::bench {

Args Args::Parse(int argc, char** argv) {
  Args args;
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    auto next = [&]() -> std::string {
      return i + 1 < argc ? std::string(argv[++i]) : std::string();
    };
    if (a == "--dataset") {
      args.dataset = next();
    } else if (a == "--n") {
      args.n = std::stoull(next());
    } else if (a == "--queries") {
      args.queries = std::stoull(next());
    } else if (a == "--shards") {
      args.shards = static_cast<uint32_t>(std::stoul(next()));
    } else if (a == "--json") {
      args.json = next();
    } else if (a == "--fast") {
      args.fast = true;
    } else if (a == "--help") {
      std::printf(
          "flags: --dataset NAME  --n N  --queries Q  --shards S (multi-core "
          "mode)  --json PATH (JSONL rows)  --fast (quarter scale)\n");
      std::exit(0);
    }
  }
  return args;
}

uint64_t Args::EffectiveN(const data::DatasetSpec& spec) const {
  if (n > 0) return n;
  return fast ? std::max<uint64_t>(2000, spec.default_n / 4) : spec.default_n;
}

std::unique_ptr<util::JsonlWriter> Args::OpenJson() const {
  if (json.empty()) return nullptr;
  auto writer = util::JsonlWriter::Open(json);
  if (!writer.ok()) {
    std::fprintf(stderr, "warning: %s\n", writer.status().ToString().c_str());
    return nullptr;
  }
  return std::move(writer).value();
}

Result<Workload> MakeWorkload(const data::DatasetSpec& spec, uint64_t n_override,
                              uint64_t nq_override, uint32_t gt_k) {
  Workload w;
  w.spec = spec;
  w.gen = data::MakeDataset(spec, n_override, nq_override);
  w.gt = data::GroundTruth::Compute(w.gen.base, w.gen.queries, gt_k);
  lsh::E2lshConfig cfg = spec.lsh;
  cfg.x_max = w.gen.base.XMax();
  E2_ASSIGN_OR_RETURN(w.params,
                      lsh::ComputeParams(w.gen.base.n(), w.gen.base.dim(), cfg));
  return w;
}

std::vector<double> DefaultSFactors() { return {0.5, 1, 2, 4, 8, 16, 32}; }
std::vector<double> DefaultSrsFractions() {
  return {0.002, 0.005, 0.01, 0.02, 0.05, 0.1, 0.2};
}
std::vector<double> DefaultQalshCs() { return {3.0, 2.5, 2.0, 1.7, 1.5}; }

std::vector<SweepPoint> SweepInMemory(e2lsh::InMemoryE2lsh* index,
                                      const Workload& w, uint32_t k,
                                      const std::vector<double>& s_factors) {
  std::vector<SweepPoint> out;
  for (const double f : s_factors) {
    index->SetCandidateCapFactor(f);
    const auto batch = index->SearchBatch(w.gen.queries, k);
    SweepPoint p;
    p.knob = f;
    p.ratio = data::MeanOverallRatio(w.gt, batch.results, k);
    p.query_ns = static_cast<double>(batch.wall_ns) /
                 static_cast<double>(w.gen.queries.n());
    p.qps = batch.QueriesPerSecond();
    p.mean_ios = batch.MeanIosInfiniteBlock();
    p.mean_radii = batch.MeanRadii();
    p.compute_ns = p.query_ns;  // in-memory: all time is compute
    out.push_back(p);
  }
  return out;
}

std::vector<SweepPoint> SweepOs(core::StorageIndex* index, const Workload& w,
                                uint32_t k, const core::EngineOptions& opts,
                                const std::vector<double>& s_factors,
                                storage::ChargedDevice* charged) {
  std::vector<SweepPoint> out;
  for (const double f : s_factors) {
    index->SetCandidateCapFactor(f);
    core::QueryEngine engine(index, &w.gen.base, opts);
    if (charged != nullptr) charged->ResetStats();
    auto batch = engine.SearchBatch(w.gen.queries, k);
    if (!batch.ok()) continue;
    SweepPoint p;
    p.knob = f;
    p.ratio = data::MeanOverallRatio(w.gt, batch->results, k);
    p.query_ns = static_cast<double>(batch->wall_ns) /
                 static_cast<double>(w.gen.queries.n());
    p.qps = batch->QueriesPerSecond();
    p.mean_ios = batch->MeanIos();
    p.mean_radii = batch->MeanRadii();
    p.compute_ns = static_cast<double>(batch->compute_ns) /
                   static_cast<double>(w.gen.queries.n());
    if (charged != nullptr) {
      p.io_cpu_ns = static_cast<double>(charged->io_cpu_ns()) /
                    static_cast<double>(w.gen.queries.n());
    }
    out.push_back(p);
  }
  return out;
}

std::vector<SweepPoint> SweepSrs(const Workload& w, uint32_t k,
                                 const std::vector<double>& fractions) {
  std::vector<SweepPoint> out;
  for (const double f : fractions) {
    baselines::SrsConfig cfg;
    cfg.max_verify =
        std::max<uint64_t>(k, static_cast<uint64_t>(f * static_cast<double>(w.n())));
    auto srs = baselines::Srs::Build(w.gen.base, cfg);
    if (!srs.ok()) continue;
    const auto batch = (*srs)->SearchBatch(w.gen.queries, k);
    SweepPoint p;
    p.knob = f;
    p.ratio = data::MeanOverallRatio(w.gt, batch.results, k);
    p.query_ns = static_cast<double>(batch.wall_ns) /
                 static_cast<double>(w.gen.queries.n());
    p.qps = batch.QueriesPerSecond();
    out.push_back(p);
  }
  return out;
}

std::vector<SweepPoint> SweepQalsh(const Workload& w, uint32_t k,
                                   const std::vector<double>& cs) {
  std::vector<SweepPoint> out;
  for (const double c : cs) {
    baselines::QalshConfig cfg;
    cfg.c = c;
    auto qalsh = baselines::Qalsh::Build(w.gen.base, cfg);
    if (!qalsh.ok()) continue;
    const auto batch = (*qalsh)->SearchBatch(w.gen.queries, k);
    SweepPoint p;
    p.knob = c;
    p.ratio = data::MeanOverallRatio(w.gt, batch.results, k);
    p.query_ns = static_cast<double>(batch.wall_ns) /
                 static_cast<double>(w.gen.queries.n());
    p.qps = batch.QueriesPerSecond();
    out.push_back(p);
  }
  return out;
}

double IoProfilePoint::IoInf() const {
  return model::IoCountInfiniteBlock(buckets_probed, num_queries);
}

double IoProfilePoint::IoAt(uint32_t objects_per_io) const {
  return model::IoCountForBlockSize(bucket_read_sizes, objects_per_io, num_queries);
}

std::vector<IoProfilePoint> ProfileInMemoryIo(e2lsh::InMemoryE2lsh* index,
                                              const Workload& w, uint32_t k,
                                              const std::vector<double>& s_factors) {
  std::vector<IoProfilePoint> out;
  for (const double f : s_factors) {
    index->SetCandidateCapFactor(f);
    IoProfilePoint p;
    p.s_factor = f;
    p.num_queries = w.gen.queries.n();
    std::vector<std::vector<util::Neighbor>> results(p.num_queries);
    const uint64_t t0 = util::NowNs();
    for (uint64_t q = 0; q < p.num_queries; ++q) {
      e2lsh::SearchStats stats;
      results[q] =
          index->Search(w.gen.queries.Row(q), k, &stats, &p.bucket_read_sizes);
      p.buckets_probed += stats.buckets_probed;
    }
    p.e2lsh_query_ns = static_cast<double>(util::NowNs() - t0) /
                       static_cast<double>(p.num_queries);
    p.ratio = data::MeanOverallRatio(w.gt, results, k);
    out.push_back(std::move(p));
  }
  return out;
}

double FieldAtRatio(const std::vector<SweepPoint>& sweep, double target,
                    double SweepPoint::*field) {
  if (sweep.empty()) return 0.0;
  // Sort by ratio ascending (most accurate first).
  std::vector<SweepPoint> pts = sweep;
  std::sort(pts.begin(), pts.end(),
            [](const SweepPoint& a, const SweepPoint& b) { return a.ratio < b.ratio; });
  if (target <= pts.front().ratio) return pts.front().*field;
  if (target >= pts.back().ratio) return pts.back().*field;
  for (size_t i = 1; i < pts.size(); ++i) {
    if (pts[i].ratio >= target) {
      const double t =
          (target - pts[i - 1].ratio) / (pts[i].ratio - pts[i - 1].ratio + 1e-30);
      return pts[i - 1].*field + t * (pts[i].*field - pts[i - 1].*field);
    }
  }
  return pts.back().*field;
}

double QueryNsAtRatio(const std::vector<SweepPoint>& sweep, double target) {
  return FieldAtRatio(sweep, target, &SweepPoint::query_ns);
}

Result<StorageStack> MakeStack(storage::DeviceKind kind, uint32_t count,
                               storage::InterfaceKind iface,
                               uint32_t queue_capacity) {
  StorageStack stack;
  storage::DeviceModel model = storage::GetDeviceModel(kind);
  model.queue_capacity = queue_capacity;
  if (count == 1) {
    E2_ASSIGN_OR_RETURN(auto dev, storage::SimulatedDevice::Create(model));
    stack.raw = std::move(dev);
  } else {
    std::vector<std::unique_ptr<storage::BlockDevice>> children;
    for (uint32_t i = 0; i < count; ++i) {
      E2_ASSIGN_OR_RETURN(auto dev, storage::SimulatedDevice::Create(model));
      children.push_back(std::move(dev));
    }
    E2_ASSIGN_OR_RETURN(auto striped,
                        storage::StripedDevice::Create(std::move(children)));
    stack.raw = std::move(striped);
  }
  const storage::InterfaceSpec spec = storage::GetInterfaceSpec(iface);
  stack.charged = std::make_unique<storage::ChargedDevice>(stack.raw.get(), spec);
  stack.name = model.name + " x " + std::to_string(count) + " / " + spec.name;
  return stack;
}

std::function<std::unique_ptr<storage::BlockDevice>(
    std::unique_ptr<storage::BlockDevice>)>
ChargeWrapper(storage::InterfaceKind iface) {
  const storage::InterfaceSpec spec = storage::GetInterfaceSpec(iface);
  return [spec](std::unique_ptr<storage::BlockDevice> queue)
             -> std::unique_ptr<storage::BlockDevice> {
    return std::make_unique<storage::ChargedDevice>(std::move(queue), spec);
  };
}

Status CopyIndexImage(storage::BlockDevice* src, storage::BlockDevice* dst,
                      uint64_t bytes) {
  constexpr uint32_t kChunk = 1 << 20;
  std::vector<uint8_t> buf(kChunk);
  uint64_t off = 0;
  while (off < bytes) {
    const uint32_t len = static_cast<uint32_t>(std::min<uint64_t>(kChunk, bytes - off));
    E2_RETURN_NOT_OK(src->ReadSync(off, buf.data(), len));
    E2_RETURN_NOT_OK(dst->Write(off, buf.data(), len));
    off += len;
  }
  return Status::OK();
}

void PrintHeader(const std::string& title, const std::vector<std::string>& cols) {
  std::printf("\n== %s ==\n", title.c_str());
  for (size_t i = 0; i < cols.size(); ++i) {
    std::printf("%s%s", i ? " | " : "", cols[i].c_str());
  }
  std::printf("\n");
  for (size_t i = 0; i < cols.size(); ++i) {
    std::printf("%s%s", i ? "-|-" : "", std::string(cols[i].size(), '-').c_str());
  }
  std::printf("\n");
}

void PrintRow(const std::vector<std::string>& cells) {
  for (size_t i = 0; i < cells.size(); ++i) {
    std::printf("%s%s", i ? " | " : "", cells[i].c_str());
  }
  std::printf("\n");
  std::fflush(stdout);
}

std::string Fmt(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  return buf;
}

std::string FmtBytes(uint64_t bytes) {
  char buf[64];
  if (bytes >= (1ULL << 30)) {
    std::snprintf(buf, sizeof(buf), "%.2f GB", static_cast<double>(bytes) / (1 << 30));
  } else if (bytes >= (1ULL << 20)) {
    std::snprintf(buf, sizeof(buf), "%.1f MB", static_cast<double>(bytes) / (1 << 20));
  } else {
    std::snprintf(buf, sizeof(buf), "%.1f KB", static_cast<double>(bytes) / (1 << 10));
  }
  return buf;
}

}  // namespace e2lshos::bench
