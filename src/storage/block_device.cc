#include "storage/block_device.h"

#include <thread>

namespace e2lshos::storage {

Status BlockDevice::RegisterBuffers(
    const std::vector<std::pair<void*, size_t>>&) {
  return Status::Unimplemented("fixed buffers are not supported by " + name());
}

Status BlockDevice::ReadSync(uint64_t offset, void* buf, uint32_t length) {
  IoRequest req;
  req.offset = offset;
  req.length = length;
  req.buf = buf;
  req.user_data = ~0ULL;
  E2_RETURN_NOT_OK(SubmitRead(req));
  IoCompletion comp;
  // mem:-class devices complete before the first poll, so a short grace
  // spin keeps them syscall-free; past that the completion is being held
  // back by a timed or real device and a tight loop would starve every
  // other thread on the core for the full service time.
  uint32_t polls = 0;
  for (;;) {
    const size_t n = PollCompletions(&comp, 1);
    if (n == 0 && ++polls > 64) std::this_thread::yield();
    if (n == 1) {
      if (comp.user_data != ~0ULL) {
        return Status::Internal("unexpected completion during sync read");
      }
      if (comp.code != StatusCode::kOk) {
        return Status(comp.code, "sync read failed");
      }
      return Status::OK();
    }
  }
}

}  // namespace e2lshos::storage
