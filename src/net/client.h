// net::Client — a blocking, single-connection client for the net::Daemon
// wire protocol (net/wire.h).
//
//   auto client = net::Client::Connect("unix:/tmp/e2lshos.sock");
//   // or "tcp:127.0.0.1:7070"
//   auto results = (*client)->SearchBatch("default", queries.data(),
//                                         count, dim, /*k=*/10);
//
// One request is in flight at a time (request_id echo is verified on
// every response); open several clients for concurrent streams. All
// socket I/O retries EINTR and short reads/writes; SIGPIPE is
// suppressed, so a daemon that vanished surfaces as an IoError Status,
// never a signal. Received frames obey the same max_frame_bytes cap as
// the daemon side — a corrupt length prefix is a protocol error, not an
// allocation.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "net/wire.h"
#include "util/status.h"

namespace e2lshos::net {

class Client {
 public:
  /// Connect to "unix:PATH" or "tcp:HOST:PORT" (see net::ParseEndpoint).
  static Result<std::unique_ptr<Client>> Connect(
      const std::string& endpoint, uint32_t max_frame_bytes = kDefaultMaxFrameBytes);

  ~Client();
  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  /// Round-trip liveness probe.
  Status Ping();

  /// Top-k for one query of `dim` floats against the daemon's index
  /// `index`. k == 0 uses the index's server-side default (Configure).
  /// `nowait` sets kFlagNoWait: a full submission queue returns a
  /// kResourceExhausted per-query status instead of blocking.
  Result<WireQueryResult> Search(const std::string& index, const float* query,
                                 uint32_t dim, uint32_t k,
                                 bool nowait = false);

  /// Top-k for `count` packed queries; one result per query, in order.
  Result<std::vector<WireQueryResult>> SearchBatch(const std::string& index,
                                                   const float* queries,
                                                   uint32_t count,
                                                   uint32_t dim, uint32_t k,
                                                   bool nowait = false);

  /// Set the server-side default k applied when a Search carries k == 0.
  Status Configure(const std::string& index, uint32_t default_k);

  /// Per-index serving + device metrics, captured by value on the daemon.
  Result<WireStats> Stats(const std::string& index);

 private:
  Client(int fd, uint32_t max_frame_bytes)
      : fd_(fd), max_frame_bytes_(max_frame_bytes) {}

  /// Write `frame`, read one response frame, validate header + echo of
  /// `request_id`, decode the status preamble. On success `*payload`
  /// holds the response bytes and `*r` is positioned at the body.
  Status RoundTrip(const std::vector<uint8_t>& frame, uint64_t request_id,
                   std::vector<uint8_t>* payload, size_t* body_offset);

  int fd_;
  uint32_t max_frame_bytes_;
  uint64_t next_request_id_ = 1;
};

}  // namespace e2lshos::net
