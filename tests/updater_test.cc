// Tests for online index maintenance: insertion (in-place block append
// and chain-head prepend), deletion via tombstones, endurance accounting,
// and persistence of the updated state.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>

#include "core/builder.h"
#include "core/persistence.h"
#include "core/query_engine.h"
#include "core/updater.h"
#include "data/generators.h"
#include "storage/file_device.h"
#include "storage/memory_device.h"
#include "util/aligned_buffer.h"

namespace e2lshos::core {
namespace {

struct Fixture {
  data::GeneratedData gen;
  lsh::E2lshParams params;
  std::unique_ptr<storage::MemoryDevice> device;
  std::unique_ptr<StorageIndex> index;
};

Fixture MakeFixture(uint64_t n = 3000, uint32_t dim = 24, double s_factor = 1000.0) {
  Fixture f;
  data::GeneratorSpec spec;
  spec.kind = data::GeneratorKind::kClustered;
  spec.dim = dim;
  spec.num_clusters = 16;
  spec.cluster_std = 3.0 / std::sqrt(2.0 * dim);
  spec.center_spread = 10.0 * std::sqrt(6.0 / dim);
  spec.seed = 21;
  f.gen = data::Generate("upd", n, 30, spec);
  lsh::E2lshConfig cfg;
  cfg.rho = 0.25;
  cfg.s_factor = s_factor;
  cfg.x_max = f.gen.base.XMax();
  auto params = lsh::ComputeParams(n, dim, cfg);
  EXPECT_TRUE(params.ok());
  f.params = *params;
  auto dev = storage::MemoryDevice::Create(2ULL << 30);
  EXPECT_TRUE(dev.ok());
  f.device = std::move(dev.value());
  auto idx = IndexBuilder::Build(f.gen.base, f.params, f.device.get());
  EXPECT_TRUE(idx.ok());
  f.index = std::move(idx.value());
  return f;
}

TEST(Updater, InsertedObjectBecomesSearchable) {
  // Build on n-10 points, insert the held-out 10, and verify each is
  // found as its own exact nearest neighbor.
  auto f = MakeFixture();
  const uint64_t n_total = f.gen.base.n();
  const uint64_t n_initial = n_total - 10;

  data::Dataset initial("initial", f.gen.base.dim());
  for (uint64_t i = 0; i < n_initial; ++i) initial.Append(f.gen.base.Row(i));
  auto dev = storage::MemoryDevice::Create(2ULL << 30);
  ASSERT_TRUE(dev.ok());
  auto idx = IndexBuilder::Build(initial, f.params, dev->get());
  ASSERT_TRUE(idx.ok());

  IndexUpdater updater(idx->get());
  for (uint64_t i = n_initial; i < n_total; ++i) {
    ASSERT_TRUE(updater.Insert(f.gen.base, static_cast<uint32_t>(i)).ok());
  }
  EXPECT_EQ(updater.inserts(), 10u);
  EXPECT_GT(updater.bytes_written(), 0u);

  QueryEngine engine(idx->get(), &f.gen.base);
  for (uint64_t i = n_initial; i < n_total; ++i) {
    auto res = engine.Search(f.gen.base.Row(i), 1);
    ASSERT_TRUE(res.ok());
    ASSERT_FALSE(res->empty());
    EXPECT_EQ((*res)[0].id, static_cast<uint32_t>(i));
    EXPECT_EQ((*res)[0].dist, 0.f);
  }
}

TEST(Updater, InsertMatchesBulkBuiltIndex) {
  // Index built on n points must answer identically to an index built on
  // n-1 points with the last inserted online (same hash family, no
  // candidate truncation).
  auto f = MakeFixture(2000);
  const uint32_t last = static_cast<uint32_t>(f.gen.base.n() - 1);

  data::Dataset initial("initial", f.gen.base.dim());
  for (uint32_t i = 0; i < last; ++i) initial.Append(f.gen.base.Row(i));
  auto dev = storage::MemoryDevice::Create(2ULL << 30);
  ASSERT_TRUE(dev.ok());
  auto incremental = IndexBuilder::Build(initial, f.params, dev->get());
  ASSERT_TRUE(incremental.ok());
  IndexUpdater updater(incremental->get());
  ASSERT_TRUE(updater.Insert(f.gen.base, last).ok());

  QueryEngine bulk_engine(f.index.get(), &f.gen.base);
  QueryEngine incr_engine(incremental->get(), &f.gen.base);
  auto bulk = bulk_engine.SearchBatch(f.gen.queries, 5);
  auto incr = incr_engine.SearchBatch(f.gen.queries, 5);
  ASSERT_TRUE(bulk.ok());
  ASSERT_TRUE(incr.ok());
  for (uint64_t q = 0; q < f.gen.queries.n(); ++q) {
    ASSERT_EQ(bulk->results[q].size(), incr->results[q].size());
    for (size_t i = 0; i < bulk->results[q].size(); ++i) {
      EXPECT_EQ(bulk->results[q][i].id, incr->results[q][i].id) << "query " << q;
    }
  }
}

TEST(Updater, ManyInsertsGrowChains) {
  // Insert enough near-identical points to overflow head blocks and force
  // chain-head prepends; all must remain searchable. n = 3000 leaves
  // id-space headroom (ceil(log2 3000) = 12 bits -> 4096 ids).
  auto f = MakeFixture(3000);
  data::Dataset& base = f.gen.base;
  const uint32_t dim = base.dim();
  std::vector<float> clone(base.Row(0), base.Row(0) + dim);
  IndexUpdater updater(f.index.get());
  const uint32_t start = static_cast<uint32_t>(base.n());
  const uint64_t storage_before = f.index->sizes().storage_bytes;
  for (int i = 0; i < 120; ++i) {
    clone[0] += 0.0001f;  // near-duplicates share most buckets
    base.Append(clone.data());
    ASSERT_TRUE(updater.Insert(base, start + i).ok());
  }
  EXPECT_GT(f.index->sizes().storage_bytes, storage_before);
  QueryEngine engine(f.index.get(), &base);
  auto res = engine.Search(clone.data(), 1);
  ASSERT_TRUE(res.ok());
  ASSERT_FALSE(res->empty());
  EXPECT_EQ((*res)[0].id, start + 119);
}

TEST(Updater, RemoveHidesObjectAndRestoreRevives) {
  auto f = MakeFixture();
  QueryEngine engine(f.index.get(), &f.gen.base);
  const uint32_t victim = 137;
  auto before = engine.Search(f.gen.base.Row(victim), 1);
  ASSERT_TRUE(before.ok());
  ASSERT_EQ((*before)[0].id, victim);

  IndexUpdater updater(f.index.get());
  ASSERT_TRUE(updater.Remove(victim).ok());
  EXPECT_EQ(f.index->num_tombstones(), 1u);
  auto after = engine.Search(f.gen.base.Row(victim), 1);
  ASSERT_TRUE(after.ok());
  ASSERT_FALSE(after->empty());
  EXPECT_NE((*after)[0].id, victim);
  EXPECT_GT((*after)[0].dist, 0.f);

  ASSERT_TRUE(updater.Restore(victim).ok());
  auto revived = engine.Search(f.gen.base.Row(victim), 1);
  ASSERT_TRUE(revived.ok());
  EXPECT_EQ((*revived)[0].id, victim);
}

TEST(Updater, RemoveIsIdempotent) {
  auto f = MakeFixture(500);
  IndexUpdater updater(f.index.get());
  ASSERT_TRUE(updater.Remove(3).ok());
  ASSERT_TRUE(updater.Remove(3).ok());
  EXPECT_EQ(f.index->num_tombstones(), 1u);
}

TEST(Updater, RestoreOfNeverRemovedIdIsNoOp) {
  auto f = MakeFixture(500);
  IndexUpdater updater(f.index.get());
  // Never removed, and (for the second id) never even inserted: Restore
  // must succeed without creating any tombstone state.
  ASSERT_TRUE(updater.Restore(7).ok());
  ASSERT_TRUE(updater.Restore(400000).ok());
  EXPECT_EQ(f.index->num_tombstones(), 0u);
  QueryEngine engine(f.index.get(), &f.gen.base);
  auto hit = engine.Search(f.gen.base.Row(7), 1);
  ASSERT_TRUE(hit.ok());
  EXPECT_EQ((*hit)[0].id, 7u);
}

TEST(Updater, RejectsIdBeyondIdSpace) {
  auto f = MakeFixture(500);
  data::Dataset& base = f.gen.base;
  std::vector<float> p(base.dim(), 0.f);
  // Grow the dataset far past the id space fixed at build time.
  const uint64_t limit = 1ULL << ObjectInfoCodec::Make(
                             500, f.index->layout().fp).value().id_bits;
  while (base.n() <= limit) base.Append(p.data());
  IndexUpdater updater(f.index.get());
  EXPECT_EQ(updater.Insert(base, static_cast<uint32_t>(limit)).code(),
            StatusCode::kFailedPrecondition);
}

TEST(Updater, EnduranceAccountingPerInsert) {
  // Each insert writes at most (blocks touched) * 512 B across all
  // (radius, l) pairs — the paper's "impact of insertion is small" claim
  // in numbers.
  auto f = MakeFixture(2000);
  data::Dataset& base = f.gen.base;
  std::vector<float> p(base.Row(42), base.Row(42) + base.dim());
  base.Append(p.data());
  IndexUpdater updater(f.index.get());
  ASSERT_TRUE(updater.Insert(base, static_cast<uint32_t>(base.n() - 1)).ok());
  const uint64_t pairs = static_cast<uint64_t>(f.params.num_radii()) * f.params.L;
  // Upper bound: one block write + one table write per pair.
  EXPECT_LE(updater.bytes_written(), pairs * (512 + 8));
  EXPECT_GT(updater.bytes_written(), 0u);
}

// ---------------------------------------------------------------------------
// Direct-I/O regression: the updater's 8-byte table writes and 512-byte
// block writes violate a direct device's alignment contract unless they
// are staged through aligned read-modify-write windows.
// ---------------------------------------------------------------------------

/// Hard-enforces a (larger) alignment unit on every read and write — a
/// deterministic stand-in for a 4Kn direct-I/O drive, independent of
/// whether the host filesystem supports O_DIRECT.
class AlignmentShim : public storage::BlockDevice {
 public:
  AlignmentShim(storage::BlockDevice* inner, uint32_t unit)
      : inner_(inner), unit_(unit) {}

  Status SubmitRead(const storage::IoRequest& req) override {
    if (req.offset % unit_ != 0 || req.length % unit_ != 0) {
      return Status::InvalidArgument("unaligned read through shim");
    }
    return inner_->SubmitRead(req);
  }
  size_t PollCompletions(storage::IoCompletion* out, size_t max) override {
    return inner_->PollCompletions(out, max);
  }
  Status Write(uint64_t offset, const void* data, uint32_t length) override {
    if (offset % unit_ != 0 || length % unit_ != 0) {
      return Status::InvalidArgument("unaligned write through shim");
    }
    return inner_->Write(offset, data, length);
  }
  uint64_t capacity() const override {
    return inner_->capacity() / unit_ * unit_;
  }
  uint32_t io_alignment() const override { return unit_; }
  uint32_t outstanding() const override { return inner_->outstanding(); }
  std::string name() const override { return "align+" + inner_->name(); }
  storage::DeviceStats stats() const override { return inner_->stats(); }
  void ResetStats() override { inner_->ResetStats(); }

 private:
  storage::BlockDevice* inner_;
  uint32_t unit_;
};

TEST(UpdaterDirectIo, InsertThroughFourKAlignmentShim) {
  auto f = MakeFixture(2000);
  const uint64_t n_total = f.gen.base.n();
  const uint64_t n_initial = n_total - 10;
  data::Dataset initial("initial", f.gen.base.dim());
  for (uint64_t i = 0; i < n_initial; ++i) initial.Append(f.gen.base.Row(i));
  auto dev = storage::MemoryDevice::Create(2ULL << 30);
  ASSERT_TRUE(dev.ok());
  auto idx = IndexBuilder::Build(initial, f.params, dev->get());
  ASSERT_TRUE(idx.ok());
  const std::string meta = ::testing::TempDir() + "/e2_upd_4k_meta.bin";
  ASSERT_TRUE(SaveIndexMeta(**idx, meta).ok());

  AlignmentShim shim(dev->get(), 4096);
  // The shim really enforces the contract the updater must survive:
  // a bare 8-byte table write is exactly the historical failure.
  uint64_t probe = 0;
  EXPECT_EQ(shim.Write(8, &probe, 8).code(), StatusCode::kInvalidArgument);

  auto reopened = LoadIndexMeta(meta, &shim);
  ASSERT_TRUE(reopened.ok());
  IndexUpdater updater(reopened->get());
  for (uint64_t i = n_initial; i < n_total; ++i) {
    ASSERT_TRUE(updater.Insert(f.gen.base, static_cast<uint32_t>(i)).ok())
        << "insert " << i;
  }
  // Every staged write pushed whole 4K windows to the device.
  EXPECT_GT(updater.bytes_written(), 0u);
  EXPECT_EQ(updater.bytes_written() % 4096, 0u);

  QueryEngine engine(reopened->get(), &f.gen.base);
  for (uint64_t i = n_initial; i < n_total; ++i) {
    auto res = engine.Search(f.gen.base.Row(i), 1);
    ASSERT_TRUE(res.ok());
    ASSERT_FALSE(res->empty());
    EXPECT_EQ((*res)[0].id, static_cast<uint32_t>(i));
    EXPECT_EQ((*res)[0].dist, 0.f);
  }
  std::remove(meta.c_str());
}

TEST(UpdaterDirectIo, InsertOnRealDirectFileDevice) {
  const std::string path = ::testing::TempDir() + "/e2_upd_direct.img";
  storage::FileDevice::Options opt;
  opt.capacity = 64ULL << 20;
  opt.io_threads = 2;
  opt.direct_io = true;
  auto direct = storage::FileDevice::Create(path, opt);
  if (!direct.ok()) GTEST_SKIP() << "filesystem does not support O_DIRECT";
  const uint32_t unit = (*direct)->io_alignment();
  ASSERT_GE(unit, 512u);

  auto f = MakeFixture(1500);
  const uint64_t n_total = f.gen.base.n();
  const uint64_t n_initial = n_total - 5;
  data::Dataset initial("initial", f.gen.base.dim());
  for (uint64_t i = 0; i < n_initial; ++i) initial.Append(f.gen.base.Row(i));
  auto mem = storage::MemoryDevice::Create(2ULL << 30);
  ASSERT_TRUE(mem.ok());
  auto idx = IndexBuilder::Build(initial, f.params, mem->get());
  ASSERT_TRUE(idx.ok());

  // Ship the image to the direct device in aligned chunks.
  const uint64_t image =
      ((*idx)->sizes().storage_bytes + unit - 1) / unit * unit;
  ASSERT_LE(image, opt.capacity);
  util::AlignedBuffer chunk(1 << 20, unit);
  for (uint64_t off = 0; off < image; off += chunk.size()) {
    const uint32_t len = static_cast<uint32_t>(
        std::min<uint64_t>(chunk.size(), image - off));
    ASSERT_TRUE(mem->get()->ReadSync(off, chunk.data(), len).ok());
    ASSERT_TRUE((*direct)->Write(off, chunk.data(), len).ok());
  }
  const std::string meta = ::testing::TempDir() + "/e2_upd_direct_meta.bin";
  ASSERT_TRUE(SaveIndexMeta(**idx, meta).ok());
  auto reopened = LoadIndexMeta(meta, direct->get());
  ASSERT_TRUE(reopened.ok());

  IndexUpdater updater(reopened->get());
  for (uint64_t i = n_initial; i < n_total; ++i) {
    ASSERT_TRUE(updater.Insert(f.gen.base, static_cast<uint32_t>(i)).ok())
        << "insert " << i;
  }
  QueryEngine engine(reopened->get(), &f.gen.base);
  for (uint64_t i = n_initial; i < n_total; ++i) {
    auto res = engine.Search(f.gen.base.Row(i), 1);
    ASSERT_TRUE(res.ok());
    ASSERT_FALSE(res->empty());
    EXPECT_EQ((*res)[0].id, static_cast<uint32_t>(i));
  }
  std::remove(meta.c_str());
  std::remove(path.c_str());
}

TEST(Updater, TombstonesSurvivePersistence) {
  auto f = MakeFixture(800);
  IndexUpdater updater(f.index.get());
  ASSERT_TRUE(updater.Remove(7).ok());
  ASSERT_TRUE(updater.Remove(9).ok());
  const std::string meta = ::testing::TempDir() + "/e2_upd_meta.bin";
  ASSERT_TRUE(SaveIndexMeta(*f.index, meta).ok());
  auto loaded = LoadIndexMeta(meta, f.device.get());
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ((*loaded)->num_tombstones(), 2u);
  EXPECT_TRUE((*loaded)->IsDeleted(7));
  EXPECT_TRUE((*loaded)->IsDeleted(9));
  EXPECT_FALSE((*loaded)->IsDeleted(8));
  std::remove(meta.c_str());
}

}  // namespace
}  // namespace e2lshos::core
