// Native multi-queue device capability (NVMe-style queue pairs).
//
// The paper's multithreading story (Sec. 6.5, Fig. 16) assumes one
// hardware queue pair per serving thread: each thread submits to and
// polls its own queue with no cross-thread coordination. This header is
// that capability as a first-class device interface:
//
//   * MultiQueueDevice — implemented by devices that can hand out
//     independently-pollable queues. Each queue is a BlockDevice that
//     owns its submissions and completions: UringDevice gives every
//     queue a real io_uring ring over the shared file, FileDevice a
//     private pread-thread slice + completion ring, MemoryDevice and
//     SimulatedDevice a private completion inbox (the simulator's flash
//     unit clocks stay shared — that's the hardware being modeled).
//     StripedDevice composes one child queue per child.
//
//   * AcquireQueues — the one entry point engines use. It returns native
//     queues when the device supports them and the policy allows,
//     otherwise it transparently falls back to the QueueRouter shim
//     (software multiplexing of the single shared completion stream),
//     so every device keeps working unchanged.
//
// Queues must not outlive the device that created them.
#pragma once

#include <memory>
#include <mutex>
#include <vector>

#include "storage/block_device.h"
#include "storage/queue_router.h"

namespace e2lshos::storage {

/// \brief Per-queue configuration for MultiQueueDevice::CreateQueue.
struct QueueOptions {
  /// Max submitted-but-unharvested reads on this queue.
  uint32_t queue_capacity = 256;
  /// FileDevice queues only: width of the queue's private pread-thread
  /// slice (its share of the per-queue "hardware" parallelism).
  uint32_t io_threads = 2;
};

/// \brief Capability interface: devices able to create native queues.
///
/// Exposed through BlockDevice::multi_queue(); a device that returns
/// itself from there must implement this.
class MultiQueueDevice {
 public:
  virtual ~MultiQueueDevice() = default;

  /// Upper bound on additional queues this device can hand out (a hint;
  /// CreateQueue may still fail, e.g. when the kernel refuses a ring).
  virtual uint32_t max_queues() const = 0;

  /// Create an independently-pollable queue over this device. The queue
  /// owns its submissions and completions: polling it never consumes
  /// another queue's completions, and its outstanding()/stats() cover
  /// only its own traffic. Thread-safe; the returned queue itself is a
  /// single-owner BlockDevice, driven by one thread at a time.
  virtual Result<std::unique_ptr<BlockDevice>> CreateQueue(
      const QueueOptions& options) = 0;
};

/// \brief Bookkeeping shared by the native-queue implementations: a
/// parent device tracks its live queues so device-level stats() /
/// outstanding() keep covering queue traffic. All methods thread-safe.
class QueueRegistry {
 public:
  void Add(BlockDevice* queue) {
    std::lock_guard<std::mutex> lock(mu_);
    queues_.push_back(queue);
  }
  void Remove(BlockDevice* queue) {
    std::lock_guard<std::mutex> lock(mu_);
    for (auto it = queues_.begin(); it != queues_.end(); ++it) {
      if (*it == queue) {
        queues_.erase(it);
        return;
      }
    }
  }
  /// Fold every live queue's stats into `into`.
  void MergeStats(DeviceStats* into) const {
    std::lock_guard<std::mutex> lock(mu_);
    for (const BlockDevice* q : queues_) MergeDeviceStats(into, q->stats());
  }
  uint32_t SumOutstanding() const {
    std::lock_guard<std::mutex> lock(mu_);
    uint32_t total = 0;
    for (const BlockDevice* q : queues_) total += q->outstanding();
    return total;
  }
  void ResetAll() {
    std::lock_guard<std::mutex> lock(mu_);
    for (BlockDevice* q : queues_) q->ResetStats();
  }
  size_t size() const {
    std::lock_guard<std::mutex> lock(mu_);
    return queues_.size();
  }

 private:
  mutable std::mutex mu_;
  std::vector<BlockDevice*> queues_;
};

/// \brief Queue-acquisition policy for AcquireQueues.
struct AcquireOptions {
  QueueOptions queue;
  /// Skip native queues even when available (the parity-test switch and
  /// the `queues=0` URI knob).
  bool force_router = false;
  /// Cap on native queues; asking for more falls back to the router.
  /// 0 = uncapped.
  uint32_t max_native = 0;
};

/// \brief The result of AcquireQueues: `count` queues, plus the router
/// keeping them alive when the fallback shim was used. The router member
/// is declared first so queues are destroyed before it.
struct QueueSet {
  std::unique_ptr<QueueRouter> router;  ///< Non-null on the fallback path.
  std::vector<std::unique_ptr<BlockDevice>> queues;
  bool native = false;

  const char* mode() const { return native ? "native" : "router"; }
};

/// Acquire `count` independent queues over `device`. Native queues when
/// the device supports them and the policy allows; the QueueRouter shim
/// otherwise (including when any native creation fails mid-way — the
/// set is all-native or all-routed, never mixed). Never fails for
/// 1 <= count <= 255.
QueueSet AcquireQueues(BlockDevice* device, uint32_t count,
                       const AcquireOptions& options = {});

}  // namespace e2lshos::storage
