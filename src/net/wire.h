// The E2LSHoS wire protocol: length-prefixed binary frames carrying
// Search / SearchBatch / Configure / Stats / Ping requests to a
// net::Daemon serving one or more indexes, and their responses.
//
// Every frame, request or response, is:
//
//   u32 length     | bytes following this field (kHeaderBytes..max)
//   u16 magic      | 0x4C45 ("EL")
//   u8  version    | kWireVersion
//   u8  type       | MsgType; responses set kResponseBit
//   u64 request_id | client-chosen, echoed verbatim in the response
//   ...body        | per-type payload (below)
//
// All integers are little-endian fixed-width; floats are IEEE-754 bit
// patterns; strings are u16 length + bytes (no terminator). Decoding is
// strictly bounds-checked: a Reader never dereferences past the frame,
// and a malformed frame (bad magic/version, truncated body, trailing
// garbage, length under kHeaderBytes or over the negotiated maximum) is
// a kProtocolError — never an allocation sized from attacker bytes.
//
// Request bodies:
//   Ping        | (empty)
//   Search      | str index, u32 k, u32 flags, u32 dim, dim x f32
//   SearchBatch | str index, u32 k, u32 flags, u32 count, u32 dim,
//               |   count*dim x f32
//   Configure   | str index, u32 default_k
//   Stats       | str index
//   Health      | (empty)
//   Update      | str index, u8 op (0 insert / 1 remove / 2 restore),
//               |   u32 count, then for insert: u32 dim, count*dim x f32;
//               |   for remove/restore: count x u32 id
//
// Response bodies all start with `u8 code, str message` (code 0 = OK,
// empty message). On OK:
//   Pong        | (empty)
//   Search*     | u32 count; per query: u8 qcode, u64 latency_ns,
//               |   u32 nk, nk x (u32 id, f32 dist)
//   Configure   | (empty)
//   Stats       | the fixed WireStats block (EncodeStats/DecodeStats)
//   Health      | the fixed WireHealth block (EncodeHealth/DecodeHealth)
//   Update      | the fixed WireUpdateAck block (count applied, first
//               |   assigned id for inserts, epoch sequence published)
//
// `k = 0` in a Search/SearchBatch means "use the per-connection default
// set by Configure". Flag kFlagNoWait requests non-blocking admission:
// a full submission queue fails that query with kResourceExhausted
// instead of exerting backpressure on the connection.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/streaming_server.h"
#include "util/status.h"
#include "util/topk.h"

namespace e2lshos::net {

inline constexpr uint16_t kWireMagic = 0x4C45;  // "EL"
/// v2: Update requests + the four update counters at the tail of the
/// Stats block. The check is strict equality, so v1 and v2 peers do not
/// interoperate — client and daemon ship from the same tree.
inline constexpr uint8_t kWireVersion = 2;
/// Frame-payload bytes before the body: magic + version + type + id.
inline constexpr uint32_t kHeaderBytes = 12;
/// Default cap on the length prefix. A frame larger than this is a
/// protocol error; the daemon closes the connection without reading
/// (or allocating) the payload.
inline constexpr uint32_t kDefaultMaxFrameBytes = 16u << 20;

/// High bit of the type byte marks a response to the same-typed request.
inline constexpr uint8_t kResponseBit = 0x80;

enum class MsgType : uint8_t {
  kPing = 1,
  kSearch = 2,
  kSearchBatch = 3,
  kConfigure = 4,
  kStats = 5,
  kHealth = 6,
  kUpdate = 7,
};

/// Update request operations.
enum class UpdateOp : uint8_t {
  kInsert = 0,
  kRemove = 1,
  kRestore = 2,
};

/// Search/SearchBatch request flags.
inline constexpr uint32_t kFlagNoWait = 1u << 0;

/// \brief Wire error codes. Values 0..10 mirror e2lshos::StatusCode
/// one-to-one so engine statuses survive the wire unchanged;
/// kProtocolError marks frames the daemon could not parse at all.
enum class WireCode : uint8_t {
  kOk = 0,
  kInvalidArgument = 1,
  kOutOfRange = 2,
  kIoError = 3,
  kResourceExhausted = 4,
  kFailedPrecondition = 5,
  kNotFound = 6,
  kInternal = 7,
  kUnimplemented = 8,
  kDeadlineExceeded = 9,
  kUnavailable = 10,
  kProtocolError = 100,
};

WireCode WireCodeFromStatus(const Status& status);
/// Reconstruct a Status from a wire code + message (OK for kOk).
Status StatusFromWire(WireCode code, const std::string& message);

/// \brief Decoded frame header.
struct FrameHeader {
  uint8_t type = 0;  ///< Raw type byte, kResponseBit included.
  uint64_t request_id = 0;
};

/// \brief Per-index serving metrics carried by a Stats response — the
/// streaming snapshot, the admission queue depth, and the device
/// counters, all captured by value on the daemon side.
struct WireStats {
  uint64_t completed = 0;
  uint64_t failed = 0;
  uint64_t rejected = 0;
  uint64_t batches = 0;
  uint64_t p50_ns = 0;
  uint64_t p95_ns = 0;
  uint64_t p99_ns = 0;
  uint64_t max_ns = 0;
  double mean_latency_ns = 0.0;
  double mean_batch_size = 0.0;
  double sustained_qps = 0.0;
  double overall_qps = 0.0;
  uint64_t queue_depth = 0;
  uint64_t reads_completed = 0;
  uint64_t bytes_read = 0;
  uint64_t cache_hits = 0;
  uint64_t cache_misses = 0;
  uint64_t faults_injected = 0;    ///< Device-layer injected faults.
  uint64_t retries = 0;            ///< Device-layer transparent resubmits.
  uint64_t retries_exhausted = 0;  ///< Requests failed after the last retry.
  uint64_t updates_applied = 0;    ///< Live inserts + removes + restores.
  uint64_t epochs_published = 0;   ///< Live-update epochs made visible.
  uint64_t update_staged_bytes = 0;  ///< Device bytes written by staging.
  uint64_t update_lag = 0;         ///< Ops staged but not reader-visible.
};

/// \brief Daemon-wide health carried by a Health response. `state` is
/// 0 = ok, 1 = degraded (error-rate breaker tripped, Search requests are
/// shed with kUnavailable until it clears), 2 = unhealthy (almost every
/// recent query failed). Rates are per-second over the breaker's rolling
/// window.
struct WireHealth {
  uint8_t state = 0;
  double error_rate = 0.0;   ///< Failed queries / sec.
  double shed_rate = 0.0;    ///< Breaker-shed queries / sec.
  uint64_t total_shed = 0;   ///< Queries shed since startup.
};

/// \brief Update response body: how many operations were applied and
/// the epoch sequence that made them visible. `first_id` is meaningful
/// for inserts only (the ids are consecutive from it).
struct WireUpdateAck {
  uint32_t count_applied = 0;
  uint32_t first_id = 0;
  uint64_t epoch = 0;
};

/// \brief One remote query outcome (Search/SearchBatch response entry).
struct WireQueryResult {
  Status status = Status::OK();
  uint64_t latency_ns = 0;
  std::vector<util::Neighbor> neighbors;
};

// ---------------------------------------------------------------------------
// Writer: append-only frame encoder.
// ---------------------------------------------------------------------------

/// \brief Builds one frame. Begin() writes the length placeholder and
/// header; Finish() patches the length and hands the bytes over.
class Writer {
 public:
  void Begin(uint8_t type, uint64_t request_id);
  void U8(uint8_t v) { buf_.push_back(v); }
  void U16(uint16_t v);
  void U32(uint32_t v);
  void U64(uint64_t v);
  void F32(float v);
  void F64(double v);
  /// u16 length prefix + raw bytes; strings over 65535 bytes are
  /// truncated (only used for names and error messages).
  void Str(const std::string& s);
  void Raw(const void* data, size_t n);
  std::vector<uint8_t> Finish();

 private:
  std::vector<uint8_t> buf_;
};

// ---------------------------------------------------------------------------
// Reader: strict bounds-checked frame decoder.
// ---------------------------------------------------------------------------

/// \brief Cursor over one frame payload (everything after the length
/// prefix). Every getter fails with kProtocolError instead of reading
/// past the end.
class Reader {
 public:
  Reader(const uint8_t* data, size_t size) : p_(data), end_(data + size) {}

  Status U8(uint8_t* v);
  Status U16(uint16_t* v);
  Status U32(uint32_t* v);
  Status U64(uint64_t* v);
  Status F32(float* v);
  Status F64(double* v);
  Status Str(std::string* s);
  /// Borrow `n` bytes from the frame without copying.
  Status Raw(const uint8_t** data, size_t n);
  size_t remaining() const { return static_cast<size_t>(end_ - p_); }
  /// Fails unless the frame was consumed exactly — trailing garbage in
  /// a request is a protocol error, not padding.
  Status ExpectEnd() const;

  /// Parse and validate the 12-byte header (magic + version).
  Status Header(FrameHeader* out);

 private:
  Status Need(size_t n) const;
  const uint8_t* p_;
  const uint8_t* end_;
};

/// Validate a received length prefix against the header floor and the
/// connection's frame cap. Returns kProtocolError on 0/short/oversized
/// lengths so callers never size an allocation from a bad prefix.
Status ValidateFrameLength(uint32_t len, uint32_t max_frame_bytes);

// ---------------------------------------------------------------------------
// Shared body encoders/decoders (used by both daemon and client).
// ---------------------------------------------------------------------------

/// Append the response preamble (code + message) for `status`.
void EncodeStatus(Writer* w, const Status& status);
/// Read the response preamble back into a Status.
Status DecodeStatus(Reader* r, Status* out);

void EncodeStats(Writer* w, const WireStats& stats);
Status DecodeStats(Reader* r, WireStats* out);

void EncodeHealth(Writer* w, const WireHealth& health);
Status DecodeHealth(Reader* r, WireHealth* out);

void EncodeUpdateAck(Writer* w, const WireUpdateAck& ack);
Status DecodeUpdateAck(Reader* r, WireUpdateAck* out);

/// Append one per-query result entry (qcode, latency, neighbors).
void EncodeQueryResult(Writer* w, const WireQueryResult& result);
Status DecodeQueryResult(Reader* r, WireQueryResult* out);

}  // namespace e2lshos::net
