// Handle to a built E2LSHoS index: the on-device layout plus the small
// DRAM-resident metadata (hash functions and the non-empty-slot bitmap).
//
// The DRAM footprint is intentionally tiny relative to the on-storage
// index — this is the paper's Table 6 story: E2LSHoS keeps only
// "index-related data (the hash table addresses)" in memory.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <memory>
#include <unordered_set>
#include <vector>

#include "core/epoch.h"
#include "core/layout.h"
#include "data/dataset.h"
#include "lsh/hash_family.h"
#include "lsh/params.h"
#include "storage/block_device.h"

namespace e2lshos::core {

/// \brief Aggregate sizes for Table 6 reporting.
struct IndexSizes {
  uint64_t storage_bytes = 0;      ///< Tables + bucket blocks on device.
  uint64_t table_bytes = 0;        ///< On-storage hash tables alone.
  uint64_t bucket_bytes = 0;       ///< On-storage bucket blocks alone.
  uint64_t dram_index_bytes = 0;   ///< Bitmap + hash functions in DRAM.
  uint64_t total_entries = 0;      ///< Object infos across all buckets.
  uint64_t nonempty_slots = 0;
};

class StorageIndex {
 public:
  StorageIndex() = default;

  const IndexLayout& layout() const { return layout_; }
  const lsh::E2lshParams& params() const { return params_; }
  const lsh::HashFamily& family() const { return family_; }
  storage::BlockDevice* device() const { return device_; }
  uint64_t n() const { return n_; }
  uint32_t dim() const { return dim_; }

  /// True if the (radius, l, slot) bucket has at least one object —
  /// consulted before issuing any I/O ("empty buckets are not counted as
  /// it is easy to avoid issuing I/Os for them", paper Sec. 4.3).
  bool SlotNonEmpty(uint32_t radius_idx, uint32_t l, uint32_t slot) const {
    const uint64_t bit = BitIndex(radius_idx, l, slot);
    return (bitmap_[bit >> 6] >> (bit & 63)) & 1;
  }

  /// Dense key identifying a (radius, l, slot) bucket — also its bit
  /// index in the non-empty-slot bitmap. The live-update overlay
  /// (core/epoch.h) is keyed by it.
  uint64_t BucketKey(uint32_t radius_idx, uint32_t l, uint32_t slot) const {
    return BitIndex(radius_idx, l, slot);
  }

  /// The epoch slot live mutations publish through (see core/epoch.h).
  /// Always present; its state stays null — and every reader stays on
  /// the legacy path — until a LiveUpdater publishes. Shared by
  /// WithDevice views, so sharded engines observe the same epochs as
  /// the primary index.
  const std::shared_ptr<EpochPublisher>& epoch_publisher() const {
    return epoch_publisher_;
  }

  /// True if the object was removed via IndexUpdater::Remove; the query
  /// engine skips such candidates (tombstones live in DRAM only).
  /// Reflects built/loaded + quiesced-flushed state only: while a
  /// LiveUpdater is publishing, the live truth is the current epoch's
  /// tombstone set.
  bool IsDeleted(uint32_t id) const {
    return !tombstones_.empty() && tombstones_.count(id) > 0;
  }
  uint64_t num_tombstones() const { return tombstones_.size(); }

  IndexSizes sizes() const { return sizes_; }

  /// True when the on-device image carries per-block CRC32C stamps and
  /// the table-sector CRCs below are populated (format v3; images saved
  /// before the version bump load with this false and are served without
  /// verification).
  bool checksums_enabled() const { return checksums_enabled_; }

  /// Per-512-byte-sector CRC32C of the table region, indexed by
  /// (addr - table_base) / 512. Empty when checksums are disabled.
  const std::vector<uint32_t>& table_crcs() const { return table_crcs_; }

  /// Sector index into table_crcs() for a byte address inside the table
  /// region.
  uint64_t TableSectorIndex(uint64_t addr) const {
    return (addr - layout_.table_base) / storage::kSectorBytes;
  }

  /// Number of table bytes that actually lie inside sector
  /// `sector_idx`: a full sector except for the trailing partial one,
  /// whose remainder the builder CRC'd as zeros.
  uint32_t TableSectorValidBytes(uint64_t sector_idx) const {
    const uint64_t start = sector_idx * storage::kSectorBytes;
    const uint64_t total = layout_.total_table_bytes();
    return static_cast<uint32_t>(
        std::min<uint64_t>(storage::kSectorBytes, total - start));
  }

  /// CRC of table sector `sector_idx` given its first
  /// TableSectorValidBytes() device bytes; the remainder of the sector
  /// is treated as zero to match the builder's padding.
  uint32_t ComputeTableSectorCrc(uint64_t sector_idx,
                                 const uint8_t* data) const {
    const uint32_t valid = TableSectorValidBytes(sector_idx);
    uint32_t crc = util::Crc32cExtend(0xFFFFFFFFu, data, valid);
    static constexpr uint8_t kZeros[64] = {};
    for (uint32_t pad = storage::kSectorBytes - valid; pad > 0;) {
      const uint32_t take = std::min<uint32_t>(pad, sizeof(kZeros));
      crc = util::Crc32cExtend(crc, kZeros, take);
      pad -= take;
    }
    return crc ^ 0xFFFFFFFFu;
  }

  /// Re-tune the per-radius candidate cap S = s_factor * L without
  /// rebuilding (the paper's query-time accuracy knob, Sec. 3.3).
  void SetCandidateCapFactor(double s_factor) {
    params_.s_factor = s_factor;
    params_.S = static_cast<uint64_t>(
        std::max(1.0, std::ceil(s_factor * static_cast<double>(params_.L))));
  }

  /// A view of the same index served from a different device holding an
  /// identical byte image (used to benchmark one build across many
  /// device configurations without re-hashing the database).
  std::unique_ptr<StorageIndex> WithDevice(storage::BlockDevice* device) const {
    auto clone = std::make_unique<StorageIndex>(*this);
    clone->device_ = device;
    return clone;
  }

 private:
  friend class IndexBuilder;
  friend class IndexUpdater;
  friend class LiveUpdater;
  friend Status SaveIndexMeta(const StorageIndex& index, const std::string& path);
  friend Result<std::unique_ptr<StorageIndex>> LoadIndexMeta(
      const std::string& path, storage::BlockDevice* device);

  uint64_t BitIndex(uint32_t radius_idx, uint32_t l, uint32_t slot) const {
    return (static_cast<uint64_t>(radius_idx) * layout_.L + l) *
               layout_.slots_per_table() +
           slot;
  }

  IndexLayout layout_;
  lsh::E2lshParams params_;
  lsh::HashFamily family_;
  storage::BlockDevice* device_ = nullptr;
  uint64_t n_ = 0;
  uint32_t dim_ = 0;
  std::vector<uint64_t> bitmap_;
  IndexSizes sizes_;
  uint64_t next_block_idx_ = 0;  ///< Bump allocator over the bucket region.
  std::unordered_set<uint32_t> tombstones_;
  bool checksums_enabled_ = false;
  std::vector<uint32_t> table_crcs_;  ///< Per-sector table CRCs (v3).
  /// Shared (not deep-copied) by WithDevice clones — one publication
  /// stream per logical index, whatever device a view reads from.
  std::shared_ptr<EpochPublisher> epoch_publisher_ =
      std::make_shared<EpochPublisher>();
};

}  // namespace e2lshos::core
