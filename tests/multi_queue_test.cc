// Multi-queue device architecture tests (paper Sec. 6.5: one NVMe queue
// pair per serving thread).
//
//   * AcquireQueues policy: native when the device offers it, QueueRouter
//     shim otherwise; forced-router and native-cap overrides; the set is
//     all-native or all-routed, never mixed.
//   * Per-queue isolation and device-level stats aggregation across
//     native queues.
//   * Parity: sharded query results over native queues are bit-identical
//     to the QueueRouter path across mem:/sim:cssd*4/file:/uring:
//     backends at 1 and 4 shards.
//   * Concurrency hammer: one thread per native queue, each
//     submit-and-polling its own queue (the zero-shared-lock hot path;
//     run under TSan in CI).
#include <atomic>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "core/builder.h"
#include "core/sharded_engine.h"
#include "data/generators.h"
#include "storage/cache_device.h"
#include "storage/file_device.h"
#include "storage/interface_model.h"
#include "storage/memory_device.h"
#include "storage/multi_queue.h"
#include "storage/simulated_device.h"
#include "storage/striped_device.h"
#include "storage/uring_device.h"
#include "util/aligned_buffer.h"

namespace e2lshos::storage {
namespace {

constexpr uint64_t kCapacity = 1 << 20;

// ---------------------------------------------------------------------------
// AcquireQueues policy.
// ---------------------------------------------------------------------------

TEST(AcquireQueues, NativeWhenSupported) {
  auto dev = MemoryDevice::Create(kCapacity);
  ASSERT_TRUE(dev.ok());
  QueueSet qs = AcquireQueues(dev->get(), 4);
  EXPECT_TRUE(qs.native);
  EXPECT_STREQ(qs.mode(), "native");
  EXPECT_EQ(qs.queues.size(), 4u);
  EXPECT_EQ(qs.router, nullptr);
}

TEST(AcquireQueues, ForcedRouter) {
  auto dev = MemoryDevice::Create(kCapacity);
  ASSERT_TRUE(dev.ok());
  AcquireOptions opts;
  opts.force_router = true;
  QueueSet qs = AcquireQueues(dev->get(), 4, opts);
  EXPECT_FALSE(qs.native);
  EXPECT_STREQ(qs.mode(), "router");
  EXPECT_EQ(qs.queues.size(), 4u);
  EXPECT_NE(qs.router, nullptr);
}

TEST(AcquireQueues, NativeCapFallsBackToRouterEntirely) {
  auto dev = MemoryDevice::Create(kCapacity);
  ASSERT_TRUE(dev.ok());
  AcquireOptions opts;
  opts.max_native = 2;
  QueueSet over = AcquireQueues(dev->get(), 4, opts);
  // 4 > cap of 2: ALL queues go through the router, never a mix.
  EXPECT_FALSE(over.native);
  EXPECT_EQ(over.queues.size(), 4u);
  EXPECT_NE(over.router, nullptr);
  QueueSet within = AcquireQueues(dev->get(), 2, opts);
  EXPECT_TRUE(within.native);
}

TEST(AcquireQueues, RouterFallbackOnNonMultiQueueDevice) {
  // A FaultyDevice-style wrapper is not multi-queue; emulate with a
  // ChargedDevice over a device hidden behind a plain BlockDevice that
  // reports no native queues: the QueueRouter path must kick in. The
  // simplest non-multi-queue device in the tree is a RoutedQueue itself.
  auto dev = MemoryDevice::Create(kCapacity);
  ASSERT_TRUE(dev.ok());
  QueueRouter router(dev->get());
  auto routed = router.CreateQueue();
  QueueSet qs = AcquireQueues(routed.get(), 2);
  EXPECT_FALSE(qs.native);
  EXPECT_EQ(qs.queues.size(), 2u);
}

TEST(AcquireQueues, ChargedDevicePassesNativeQueuesThrough) {
  auto dev = MemoryDevice::Create(kCapacity);
  ASSERT_TRUE(dev.ok());
  ChargedDevice charged(dev->get(), GetInterfaceSpec(InterfaceKind::kXlfdd));
  ASSERT_NE(charged.multi_queue(), nullptr);
  QueueSet qs = AcquireQueues(&charged, 2);
  EXPECT_TRUE(qs.native);
  // The wrapped queue keeps charging the interface cost per submission.
  util::AlignedBuffer buf(512);
  ASSERT_TRUE(dev->get()->Write(0, buf.data(), 512).ok());
  ASSERT_TRUE(qs.queues[0]->SubmitRead({0, 512, buf.data(), 7}).ok());
  IoCompletion comp;
  ASSERT_EQ(qs.queues[0]->PollCompletions(&comp, 1), 1u);
  EXPECT_EQ(comp.user_data, 7u);
}

// ---------------------------------------------------------------------------
// Native queue isolation + aggregation.
// ---------------------------------------------------------------------------

TEST(NativeQueues, CompletionsStayOnSubmittingQueue) {
  auto dev = MemoryDevice::Create(kCapacity);
  ASSERT_TRUE(dev.ok());
  std::vector<uint8_t> data(1024, 0xAB);
  ASSERT_TRUE(dev->get()->Write(0, data.data(), data.size()).ok());

  MultiQueueDevice* mq = dev->get()->multi_queue();
  ASSERT_NE(mq, nullptr);
  auto q0 = mq->CreateQueue({});
  auto q1 = mq->CreateQueue({});
  ASSERT_TRUE(q0.ok());
  ASSERT_TRUE(q1.ok());

  util::AlignedBuffer b0(512), b1(512);
  ASSERT_TRUE((*q0)->SubmitRead({0, 512, b0.data(), 100}).ok());
  ASSERT_TRUE((*q1)->SubmitRead({512, 512, b1.data(), 200}).ok());

  IoCompletion comp;
  ASSERT_EQ((*q0)->PollCompletions(&comp, 8), 1u);
  EXPECT_EQ(comp.user_data, 100u);
  EXPECT_EQ((*q0)->PollCompletions(&comp, 8), 0u);
  ASSERT_EQ((*q1)->PollCompletions(&comp, 8), 1u);
  EXPECT_EQ(comp.user_data, 200u);
  EXPECT_EQ(b0.data()[0], 0xAB);
  EXPECT_EQ(b1.data()[0], 0xAB);
}

TEST(NativeQueues, DeviceStatsAggregateQueueTraffic) {
  auto dev = MemoryDevice::Create(kCapacity);
  ASSERT_TRUE(dev.ok());
  std::vector<uint8_t> data(512, 1);
  ASSERT_TRUE(dev->get()->Write(0, data.data(), data.size()).ok());

  MultiQueueDevice* mq = dev->get()->multi_queue();
  auto q0 = mq->CreateQueue({});
  auto q1 = mq->CreateQueue({});
  util::AlignedBuffer buf(512);
  IoCompletion comp;
  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE((*q0)->SubmitRead({0, 512, buf.data(), 1}).ok());
    ASSERT_EQ((*q0)->PollCompletions(&comp, 1), 1u);
  }
  ASSERT_TRUE((*q1)->SubmitRead({0, 512, buf.data(), 2}).ok());
  ASSERT_EQ((*q1)->PollCompletions(&comp, 1), 1u);

  // Per-queue stats are private; the device folds all queues in.
  EXPECT_EQ((*q0)->stats().reads_completed, 3u);
  EXPECT_EQ((*q1)->stats().reads_completed, 1u);
  EXPECT_EQ(dev->get()->stats().reads_completed, 4u);
  EXPECT_EQ(dev->get()->stats().bytes_read, 4u * 512u);

  dev->get()->ResetStats();
  EXPECT_EQ((*q0)->stats().reads_completed, 0u);
  EXPECT_EQ(dev->get()->stats().reads_completed, 0u);
}

TEST(NativeQueues, StripedDeviceComposesChildQueues) {
  std::vector<std::unique_ptr<BlockDevice>> children;
  for (int i = 0; i < 4; ++i) {
    auto child = MemoryDevice::Create(kCapacity);
    ASSERT_TRUE(child.ok());
    children.push_back(std::move(child).value());
  }
  auto striped = StripedDevice::Create(std::move(children));
  ASSERT_TRUE(striped.ok());
  ASSERT_NE((*striped)->multi_queue(), nullptr);

  std::vector<uint8_t> sector(kSectorBytes);
  for (uint64_t s = 0; s < 8; ++s) {
    std::memset(sector.data(), static_cast<int>('A' + s), sector.size());
    ASSERT_TRUE(
        (*striped)->Write(s * kSectorBytes, sector.data(), sector.size()).ok());
  }

  auto queue = (*striped)->multi_queue()->CreateQueue({});
  ASSERT_TRUE(queue.ok());
  // Reads across all stripes flow through the one queue and land with
  // the right bytes (the queue translates through the same stripe map).
  util::AlignedBuffer buf(kSectorBytes);
  IoCompletion comp;
  for (uint64_t s = 0; s < 8; ++s) {
    ASSERT_TRUE(
        (*queue)->SubmitRead({s * kSectorBytes, kSectorBytes, buf.data(), s})
            .ok());
    ASSERT_EQ((*queue)->PollCompletions(&comp, 1), 1u);
    EXPECT_EQ(comp.user_data, s);
    EXPECT_EQ(buf.data()[0], static_cast<uint8_t>('A' + s));
  }
  EXPECT_EQ((*queue)->stats().reads_completed, 8u);
  EXPECT_EQ((*striped)->stats().reads_completed, 8u);
}

TEST(NativeQueues, CacheParentResetDoesNotDesyncLiveQueues) {
  // Regression: CacheDevice's parent stats() folds live queues through
  // the same QueueRegistry as every multi-queue device, and its new
  // hit/miss counters ride that aggregation. A parent ResetStats must be
  // one full reset — lane, live queues, inner (striped) device — with no
  // double-reset of shared children and exact re-aggregation afterwards.
  std::vector<std::unique_ptr<BlockDevice>> children;
  for (int i = 0; i < 2; ++i) {
    auto child = MemoryDevice::Create(kCapacity);
    ASSERT_TRUE(child.ok());
    children.push_back(std::move(child).value());
  }
  auto striped = StripedDevice::Create(std::move(children));
  ASSERT_TRUE(striped.ok());
  std::vector<uint8_t> sector(kSectorBytes, 0x42);
  for (uint64_t s = 0; s < 4; ++s) {
    ASSERT_TRUE(
        (*striped)->Write(s * kSectorBytes, sector.data(), sector.size()).ok());
  }

  CacheDevice::Options copt;
  copt.capacity_bytes = 8 * kSectorBytes;
  auto cache = CacheDevice::Create(std::move(striped).value(), copt);
  ASSERT_TRUE(cache.ok());
  auto q0 = (*cache)->CreateQueue({});
  ASSERT_TRUE(q0.ok());

  util::AlignedBuffer buf(kSectorBytes);
  IoCompletion comp;
  auto read_via = [&](BlockDevice* ep, uint64_t off) {
    ASSERT_TRUE(ep->SubmitRead({off, kSectorBytes, buf.data(), off}).ok());
    size_t got = 0;
    for (int spin = 0; spin < 2000000 && got == 0; ++spin) {
      got = ep->PollCompletions(&comp, 1);
    }
    ASSERT_EQ(got, 1u);
  };
  read_via(q0->get(), 0);  // miss through the queue
  read_via(q0->get(), 0);  // hit through the queue
  EXPECT_EQ((*cache)->stats().cache_misses, 1u);
  EXPECT_EQ((*cache)->stats().cache_hits, 1u);

  (*cache)->ResetStats();
  const DeviceStats after = (*cache)->stats();
  EXPECT_EQ(after.cache_hits, 0u);
  EXPECT_EQ(after.cache_misses, 0u);
  EXPECT_EQ(after.reads_completed, 0u);
  EXPECT_EQ((*cache)->inner()->stats().reads_completed, 0u);

  // Re-aggregation is exact: one hit + one miss, each counted once, and
  // only the miss reaches the striped children.
  read_via(q0->get(), 0);                  // hit (contents survive reset)
  read_via(q0->get(), 2 * kSectorBytes);   // miss
  EXPECT_EQ((*cache)->stats().cache_hits, 1u);
  EXPECT_EQ((*cache)->stats().cache_misses, 1u);
  EXPECT_EQ((*cache)->stats().reads_completed, 2u);
  EXPECT_EQ((*cache)->inner()->stats().reads_completed, 1u);
}

// ---------------------------------------------------------------------------
// Parity: native queues vs. the QueueRouter shim, through the sharded
// engine, across every backend. s_factor is high enough that the
// candidate cap never binds, so results are deterministic and must be
// bit-identical regardless of queue plumbing.
// ---------------------------------------------------------------------------

struct ParityFixture {
  data::GeneratedData gen;
  lsh::E2lshParams params;
};

ParityFixture MakeParityFixture() {
  data::GeneratorSpec spec;
  spec.kind = data::GeneratorKind::kClustered;
  spec.dim = 24;
  spec.num_clusters = 16;
  spec.cluster_std = 3.0 / std::sqrt(48.0);
  spec.center_spread = 10.0 * std::sqrt(6.0 / 24.0);
  spec.seed = 11;
  auto gen = data::Generate("parity", 2000, 24, spec);

  lsh::E2lshConfig cfg;
  cfg.rho = 0.25;
  cfg.s_factor = 1000.0;  // cap never binds -> deterministic results
  cfg.x_max = gen.base.XMax();
  auto params = lsh::ComputeParams(gen.base.n(), gen.base.dim(), cfg);
  EXPECT_TRUE(params.ok());
  return {std::move(gen), std::move(params).value()};
}

void ExpectBatchesIdentical(const core::BatchResult& a,
                            const core::BatchResult& b, const char* what) {
  ASSERT_EQ(a.results.size(), b.results.size()) << what;
  for (size_t q = 0; q < a.results.size(); ++q) {
    ASSERT_EQ(a.results[q].size(), b.results[q].size())
        << what << " query " << q;
    for (size_t i = 0; i < a.results[q].size(); ++i) {
      EXPECT_EQ(a.results[q][i].id, b.results[q][i].id)
          << what << " query " << q << " rank " << i;
      EXPECT_EQ(a.results[q][i].dist, b.results[q][i].dist)
          << what << " query " << q << " rank " << i;
    }
  }
}

void RunParity(BlockDevice* dev, const ParityFixture& fx, const char* what,
               bool expect_native) {
  auto idx = core::IndexBuilder::Build(fx.gen.base, fx.params, dev);
  ASSERT_TRUE(idx.ok()) << what << ": " << idx.status().message();

  for (uint32_t shards : {1u, 4u}) {
    core::ShardOptions native_opts;
    native_opts.num_shards = shards;
    native_opts.total_contexts = 8 * shards;
    native_opts.total_inflight_ios = 64 * shards;
    // Force the queue layer even at 1 shard (the degenerate direct path
    // would bypass it and prove nothing).
    native_opts.wrap_shard_device =
        [](std::unique_ptr<storage::BlockDevice> q) { return q; };

    core::ShardOptions router_opts = native_opts;
    router_opts.queue_mode = core::QueueMode::kRouter;

    core::ShardedQueryEngine native_engine(idx->get(), &fx.gen.base,
                                           native_opts);
    EXPECT_EQ(native_engine.native_queues(), expect_native)
        << what << " shards=" << shards;
    auto native = native_engine.SearchBatch(fx.gen.queries, 5);
    ASSERT_TRUE(native.ok()) << what;

    core::ShardedQueryEngine router_engine(idx->get(), &fx.gen.base,
                                           router_opts);
    EXPECT_FALSE(router_engine.native_queues());
    EXPECT_STREQ(router_engine.queue_mode(), "router");
    auto router = router_engine.SearchBatch(fx.gen.queries, 5);
    ASSERT_TRUE(router.ok()) << what;

    ExpectBatchesIdentical(*native, *router,
                           (std::string(what) + " shards=" +
                            std::to_string(shards))
                               .c_str());
  }
}

TEST(MultiQueueParity, MemoryDevice) {
  ParityFixture fx = MakeParityFixture();
  auto dev = MemoryDevice::Create(256 << 20);
  ASSERT_TRUE(dev.ok());
  RunParity(dev->get(), fx, "mem:", /*expect_native=*/true);
}

TEST(MultiQueueParity, StripedSimulatedCssd) {
  ParityFixture fx = MakeParityFixture();
  // Fast calibration (not Table 2) so the suite stays quick; the stripe
  // geometry and queue plumbing are what's under test.
  DeviceModel model{"cssd-fast", 16, 2000, 4096, 256ULL << 20};
  std::vector<std::unique_ptr<BlockDevice>> children;
  for (int i = 0; i < 4; ++i) {
    auto child = SimulatedDevice::Create(model);
    ASSERT_TRUE(child.ok());
    children.push_back(std::move(child).value());
  }
  auto striped = StripedDevice::Create(std::move(children));
  ASSERT_TRUE(striped.ok());
  RunParity(striped->get(), fx, "sim:cssd*4", /*expect_native=*/true);
}

TEST(MultiQueueParity, FileDevice) {
  ParityFixture fx = MakeParityFixture();
  const std::string path = ::testing::TempDir() + "/e2_mq_parity_file.bin";
  FileDevice::Options opt;
  opt.capacity = 256 << 20;
  auto dev = FileDevice::Create(path, opt);
  ASSERT_TRUE(dev.ok());
  RunParity(dev->get(), fx, "file:", /*expect_native=*/true);
  dev->reset();
  std::remove(path.c_str());
}

TEST(MultiQueueParity, UringDevice) {
  if (!UringDevice::Available()) {
    GTEST_SKIP() << "io_uring unavailable on this host";
  }
  ParityFixture fx = MakeParityFixture();
  const std::string path = ::testing::TempDir() + "/e2_mq_parity_uring.bin";
  UringDevice::Options opt;
  opt.capacity = 256 << 20;
  auto dev = UringDevice::Create(path, opt);
  ASSERT_TRUE(dev.ok());
  RunParity(dev->get(), fx, "uring:", /*expect_native=*/true);
  dev->reset();
  std::remove(path.c_str());
}

// ---------------------------------------------------------------------------
// Concurrency hammer: N threads, each owning one native queue, submitting
// and polling with zero cross-thread coordination — the multi-queue hot
// path the tentpole promises is lock-free across shards. TSan verifies.
// ---------------------------------------------------------------------------

void HammerDevice(BlockDevice* dev, uint32_t num_queues, int reads_per_queue) {
  // Stamp each sector with its index so every read is verifiable.
  std::vector<uint8_t> sector(kSectorBytes);
  const uint64_t sectors = dev->capacity() / kSectorBytes;
  for (uint64_t s = 0; s < sectors; ++s) {
    std::memset(sector.data(), static_cast<int>(s & 0xFF), sector.size());
    ASSERT_TRUE(dev->Write(s * kSectorBytes, sector.data(), sector.size()).ok());
  }

  QueueSet qs = AcquireQueues(dev, num_queues);
  ASSERT_TRUE(qs.native);

  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  threads.reserve(num_queues);
  for (uint32_t t = 0; t < num_queues; ++t) {
    threads.emplace_back([&, t] {
      BlockDevice* q = qs.queues[t].get();
      util::AlignedBuffer buf(kSectorBytes, kSectorBytes);
      IoCompletion comp;
      for (int r = 0; r < reads_per_queue; ++r) {
        const uint64_t s = (t * 131 + r * 17) % sectors;
        if (!q->SubmitRead({s * kSectorBytes, kSectorBytes, buf.data(),
                            s})
                 .ok()) {
          failures.fetch_add(1, std::memory_order_relaxed);
          continue;
        }
        size_t got = 0;
        // Yield while polling: a tight mutex-grabbing spin from every
        // hammer thread can starve the backend's I/O threads on an
        // oversubscribed CI host (ctest -j), turning slow into stuck.
        for (int spin = 0; spin < 2000000 && got == 0; ++spin) {
          got = q->PollCompletions(&comp, 1);
          if (got == 0 && (spin & 0x3FF) == 0x3FF) std::this_thread::yield();
        }
        if (got != 1 || comp.user_data != s ||
            comp.code != StatusCode::kOk ||
            buf.data()[0] != static_cast<uint8_t>(s & 0xFF)) {
          failures.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(failures.load(), 0);
  EXPECT_EQ(dev->stats().reads_completed,
            static_cast<uint64_t>(num_queues) * reads_per_queue);
}

TEST(MultiQueueHammer, MemoryDevice) {
  auto dev = MemoryDevice::Create(kCapacity, /*queue_capacity=*/8192);
  ASSERT_TRUE(dev.ok());
  HammerDevice(dev->get(), 4, 500);
}

TEST(MultiQueueHammer, SimulatedDevice) {
  DeviceModel model{"hammer-ssd", 16, 1000, 8192, kCapacity};
  auto dev = SimulatedDevice::Create(model);
  ASSERT_TRUE(dev.ok());
  HammerDevice(dev->get(), 4, 200);
}

TEST(MultiQueueHammer, FileDevice) {
  const std::string path = ::testing::TempDir() + "/e2_mq_hammer_file.bin";
  FileDevice::Options opt;
  opt.capacity = kCapacity;
  auto dev = FileDevice::Create(path, opt);
  ASSERT_TRUE(dev.ok());
  HammerDevice(dev->get(), 4, 200);
  dev->reset();
  std::remove(path.c_str());
}

TEST(MultiQueueHammer, UringDevice) {
  if (!UringDevice::Available()) {
    GTEST_SKIP() << "io_uring unavailable on this host";
  }
  const std::string path = ::testing::TempDir() + "/e2_mq_hammer_uring.bin";
  UringDevice::Options opt;
  opt.capacity = kCapacity;
  auto dev = UringDevice::Create(path, opt);
  ASSERT_TRUE(dev.ok());
  HammerDevice(dev->get(), 4, 200);
  dev->reset();
  std::remove(path.c_str());
}

}  // namespace
}  // namespace e2lshos::storage
