// Tests for QueueRouter: per-queue completion isolation over a shared
// device, including concurrent multi-engine query execution — the
// regression scenario where two engines polling one device stole each
// other's completions.
#include <gtest/gtest.h>

#include <cmath>
#include <thread>

#include "core/builder.h"
#include "core/query_engine.h"
#include "data/generators.h"
#include "storage/memory_device.h"
#include "storage/queue_router.h"
#include "storage/simulated_device.h"
#include "util/aligned_buffer.h"

namespace e2lshos::storage {
namespace {

TEST(QueueRouter, EachQueueSeesOnlyItsCompletions) {
  auto dev = MemoryDevice::Create(1 << 20);
  ASSERT_TRUE(dev.ok());
  QueueRouter router(dev->get());
  auto q0 = router.CreateQueue();
  auto q1 = router.CreateQueue();
  ASSERT_NE(q0, nullptr);
  ASSERT_NE(q1, nullptr);

  util::AlignedBuffer b0(512), b1(512);
  ASSERT_TRUE(q0->SubmitRead({0, 512, b0.data(), 100}).ok());
  ASSERT_TRUE(q1->SubmitRead({512, 512, b1.data(), 200}).ok());

  // q0 polls first and must get only its own completion even though the
  // device's shared stream holds both.
  IoCompletion comp;
  size_t n0 = 0;
  for (int spin = 0; spin < 1000 && n0 == 0; ++spin) {
    n0 = q0->PollCompletions(&comp, 1);
  }
  ASSERT_EQ(n0, 1u);
  EXPECT_EQ(comp.user_data, 100u);
  EXPECT_EQ(q0->PollCompletions(&comp, 1), 0u);

  size_t n1 = 0;
  for (int spin = 0; spin < 1000 && n1 == 0; ++spin) {
    n1 = q1->PollCompletions(&comp, 1);
  }
  ASSERT_EQ(n1, 1u);
  EXPECT_EQ(comp.user_data, 200u);
}

TEST(QueueRouter, RejectsTaggedUserData) {
  auto dev = MemoryDevice::Create(1 << 20);
  ASSERT_TRUE(dev.ok());
  QueueRouter router(dev->get());
  auto q = router.CreateQueue();
  util::AlignedBuffer buf(512);
  IoRequest req{0, 512, buf.data(), 1ULL << 60};
  EXPECT_EQ(q->SubmitRead(req).code(), StatusCode::kInvalidArgument);
}

TEST(QueueRouter, ManyQueuesManyReads) {
  auto dev = MemoryDevice::Create(1 << 20, /*queue_capacity=*/8192);
  ASSERT_TRUE(dev.ok());
  QueueRouter router(dev->get());
  constexpr int kQueues = 8;
  constexpr int kReadsPerQueue = 100;
  std::vector<std::unique_ptr<BlockDevice>> queues;
  for (int i = 0; i < kQueues; ++i) queues.push_back(router.CreateQueue());

  std::vector<util::AlignedBuffer> bufs(kQueues);
  for (auto& b : bufs) b.Reset(512);
  std::vector<int> received(kQueues, 0);
  for (int r = 0; r < kReadsPerQueue; ++r) {
    for (int i = 0; i < kQueues; ++i) {
      ASSERT_TRUE(queues[i]
                      ->SubmitRead({static_cast<uint64_t>(i) * 512, 512,
                                    bufs[i].data(),
                                    static_cast<uint64_t>(i * 1000 + r)})
                      .ok());
    }
  }
  IoCompletion comps[32];
  for (int i = 0; i < kQueues; ++i) {
    while (received[i] < kReadsPerQueue) {
      const size_t n = queues[i]->PollCompletions(comps, 32);
      for (size_t j = 0; j < n; ++j) {
        EXPECT_EQ(comps[j].user_data / 1000, static_cast<uint64_t>(i));
      }
      received[i] += static_cast<int>(n);
      if (n == 0) break;  // MemoryDevice completes instantly; no spin needed
    }
    EXPECT_EQ(received[i], kReadsPerQueue) << "queue " << i;
  }
}

TEST(QueueRouter, ConcurrentEnginesProduceCorrectResults) {
  // Two query engines on separate queue pairs over one simulated SSD,
  // running concurrently from two threads: results must equal the
  // single-engine reference.
  data::GeneratorSpec spec;
  spec.kind = data::GeneratorKind::kClustered;
  spec.dim = 24;
  spec.num_clusters = 16;
  spec.cluster_std = 3.0 / std::sqrt(48.0);
  spec.center_spread = 10.0 * std::sqrt(6.0 / 24.0);
  spec.seed = 3;
  auto gen = data::Generate("router", 3000, 30, spec);

  lsh::E2lshConfig cfg;
  cfg.rho = 0.25;
  cfg.s_factor = 1000.0;
  cfg.x_max = gen.base.XMax();
  auto params = lsh::ComputeParams(gen.base.n(), gen.base.dim(), cfg);
  ASSERT_TRUE(params.ok());

  DeviceModel model{"fast-ssd", 16, 2000, 4096, 2ULL << 30};
  auto dev = SimulatedDevice::Create(model);
  ASSERT_TRUE(dev.ok());
  auto idx = core::IndexBuilder::Build(gen.base, *params, dev->get());
  ASSERT_TRUE(idx.ok());

  // Reference: single engine, exclusive device.
  core::QueryEngine ref_engine(idx->get(), &gen.base);
  auto ref = ref_engine.SearchBatch(gen.queries, 3);
  ASSERT_TRUE(ref.ok());

  QueueRouter router(dev->get());
  auto q0 = router.CreateQueue();
  auto q1 = router.CreateQueue();
  auto view0 = (*idx)->WithDevice(q0.get());
  auto view1 = (*idx)->WithDevice(q1.get());

  Result<core::BatchResult> r0(Status::Internal("unset"));
  Result<core::BatchResult> r1(Status::Internal("unset"));
  std::thread t0([&] {
    core::QueryEngine e(view0.get(), &gen.base);
    r0 = e.SearchBatch(gen.queries, 3);
  });
  std::thread t1([&] {
    core::QueryEngine e(view1.get(), &gen.base);
    r1 = e.SearchBatch(gen.queries, 3);
  });
  t0.join();
  t1.join();
  ASSERT_TRUE(r0.ok());
  ASSERT_TRUE(r1.ok());

  for (uint64_t q = 0; q < gen.queries.n(); ++q) {
    for (const auto* res : {&r0->results[q], &r1->results[q]}) {
      ASSERT_EQ(res->size(), ref->results[q].size()) << "query " << q;
      for (size_t i = 0; i < res->size(); ++i) {
        EXPECT_EQ((*res)[i].id, ref->results[q][i].id);
      }
    }
  }
}

// Regression: outstanding() and stats() were once forwarded to the
// shared device, so every queue reported the GLOBAL depth and the
// cross-queue traffic — one shard's backpressure stalled on another
// shard's in-flight I/O. Both must be per-queue.
TEST(QueueRouter, PerQueueOutstandingAndStats) {
  auto dev = MemoryDevice::Create(1 << 20);
  ASSERT_TRUE(dev.ok());
  QueueRouter router(dev->get());
  auto q0 = router.CreateQueue();
  auto q1 = router.CreateQueue();

  util::AlignedBuffer buf(512);
  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(q0->SubmitRead({0, 512, buf.data(), 10u + i}).ok());
  }
  ASSERT_TRUE(q1->SubmitRead({512, 512, buf.data(), 99}).ok());

  // Completions sit unharvested in the shared device stream; each queue
  // still reports only what IT submitted, not the global depth of 4.
  EXPECT_EQ(q0->outstanding(), 3u);
  EXPECT_EQ(q1->outstanding(), 1u);
  EXPECT_EQ(q0->stats().reads_submitted, 3u);
  EXPECT_EQ(q1->stats().reads_submitted, 1u);
  EXPECT_EQ(q0->stats().bytes_read, 3u * 512u);  // counted at submit
  EXPECT_EQ(q1->stats().bytes_read, 512u);

  IoCompletion comp;
  size_t got = 0;
  for (int spin = 0; spin < 1000 && got < 3; ++spin) {
    got += q0->PollCompletions(&comp, 1);
  }
  ASSERT_EQ(got, 3u);
  EXPECT_EQ(q0->outstanding(), 0u);
  EXPECT_EQ(q1->outstanding(), 1u);  // q1 still has not harvested
  EXPECT_EQ(q0->stats().reads_completed, 3u);
  EXPECT_EQ(q1->stats().reads_completed, 0u);

  got = 0;
  for (int spin = 0; spin < 1000 && got == 0; ++spin) {
    got = q1->PollCompletions(&comp, 1);
  }
  ASSERT_EQ(got, 1u);
  EXPECT_EQ(comp.user_data, 99u);
  EXPECT_EQ(q1->outstanding(), 0u);
  EXPECT_EQ(q1->stats().reads_completed, 1u);

  // ResetStats is per-queue too: q0's wipe must not touch q1.
  q0->ResetStats();
  EXPECT_EQ(q0->stats().reads_submitted, 0u);
  EXPECT_EQ(q1->stats().reads_submitted, 1u);
}

}  // namespace
}  // namespace e2lshos::storage
