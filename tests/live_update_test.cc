// Tests for the live mutation subsystem: Index::Insert/Remove/Restore
// concurrent with serving, published as epochs (core/live_updater.h).
//
// The load-bearing properties:
//  * Visibility: a mutation is searchable exactly when its epoch
//    publishes — an Insert that returned is found (top-1, distance 0)
//    by any search STARTED afterwards; a Remove that returned is
//    filtered from any search started afterwards.
//  * Reader safety: a serving engine running full micro-batches while a
//    writer stages and publishes sees zero corrupt blocks, zero I/O
//    errors, and no partial results — on every backend (mem:, striped
//    sim:, file:, uring:) at 1 and 4 shards. This is the suite the TSan
//    CI leg runs (concurrency label).
//  * Quiesced parity: after Save() drains the overlay into the on-device
//    tables, the same queries return bit-identical results through the
//    legacy (table-walk) path as through the overlay path.
//  * Fault absorption: with injected transient read faults + the retry
//    layer, failed inserts roll back cleanly and a retried insert lands
//    intact.
#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <string>
#include <thread>
#include <tuple>
#include <vector>

#include "api/index.h"
#include "data/generators.h"
#include "storage/uring_device.h"

namespace e2lshos {
namespace {

struct TestData {
  data::GeneratedData gen;
  lsh::E2lshConfig cfg;
};

TestData MakeData(uint64_t n = 1200, uint32_t dim = 16, uint64_t seed = 9) {
  TestData t;
  data::GeneratorSpec spec;
  spec.kind = data::GeneratorKind::kClustered;
  spec.dim = dim;
  spec.num_clusters = 16;
  spec.cluster_std = 3.0 / std::sqrt(2.0 * dim);
  spec.center_spread = 10.0 * std::sqrt(6.0 / dim);
  spec.seed = seed;
  t.gen = data::Generate("live", n, 20, spec);
  t.cfg.rho = 0.25;
  t.cfg.s_factor = 1000.0;  // no draining: exact-match answers are exact
  return t;
}

/// Rows to insert live: same distribution as the base set but a
/// different seed, so every row is distinct from every base row.
data::Dataset MakeExtraRows(uint64_t count, uint32_t dim = 16) {
  return MakeData(count, dim, /*seed=*/77).gen.base;
}

Result<std::unique_ptr<Index>> BuildOn(const TestData& t,
                                       const std::string& uri) {
  IndexSpec spec;
  spec.lsh = t.cfg;
  spec.device_uri = uri;
  spec.device_capacity = 2ULL << 30;
  return Index::Build(spec, t.gen.base /* copy */);
}

// ---------------------------------------------------------------------------
// Single-threaded visibility semantics
// ---------------------------------------------------------------------------

TEST(LiveUpdate, InsertBecomesSearchableImmediately) {
  auto t = MakeData();
  auto idx = BuildOn(t, "mem:");
  ASSERT_TRUE(idx.ok()) << idx.status().ToString();
  const uint64_t n0 = (*idx)->n();
  const auto extras = MakeExtraRows(5);

  for (uint64_t j = 0; j < extras.n(); ++j) {
    auto id = (*idx)->Insert(extras.Row(j));
    ASSERT_TRUE(id.ok()) << id.status().ToString();
    EXPECT_EQ(*id, n0 + j);
    EXPECT_EQ((*idx)->n(), n0 + j + 1);
    // The epoch published before Insert returned: this search must see
    // the new row as its own exact nearest neighbor.
    core::QueryStats qs;
    auto hit = (*idx)->Search(extras.Row(j), 1, &qs);
    ASSERT_TRUE(hit.ok()) << hit.status().ToString();
    ASSERT_EQ(hit->size(), 1u);
    EXPECT_EQ((*hit)[0].id, n0 + j);
    EXPECT_EQ((*hit)[0].dist, 0.f);
    EXPECT_EQ(qs.corrupt_blocks, 0u);
    EXPECT_EQ(qs.io_errors, 0u);
  }

  const auto dev = (*idx)->device_stats();
  EXPECT_EQ(dev.updates_applied, extras.n());
  EXPECT_EQ(dev.epochs_published, extras.n());
  EXPECT_GT(dev.update_staged_bytes, 0u);
  EXPECT_EQ(dev.update_lag, 0u);
}

TEST(LiveUpdate, RemoveHidesRestoreRevivesAndUnknownRestoreIsNoOp) {
  auto t = MakeData();
  auto idx = BuildOn(t, "mem:");
  ASSERT_TRUE(idx.ok());
  const uint32_t victim = 137;

  auto before = (*idx)->Search(t.gen.base.Row(victim), 1);
  ASSERT_TRUE(before.ok());
  ASSERT_EQ((*before)[0].id, victim);

  ASSERT_TRUE((*idx)->Remove(victim).ok());
  auto hidden = (*idx)->Search(t.gen.base.Row(victim), 1);
  ASSERT_TRUE(hidden.ok());
  ASSERT_FALSE(hidden->empty());
  EXPECT_NE((*hidden)[0].id, victim);
  EXPECT_GT((*hidden)[0].dist, 0.f);

  ASSERT_TRUE((*idx)->Restore(victim).ok());
  auto revived = (*idx)->Search(t.gen.base.Row(victim), 1);
  ASSERT_TRUE(revived.ok());
  EXPECT_EQ((*revived)[0].id, victim);

  // Restoring ids that were never removed — or never inserted at all —
  // is an accepted no-op, not an error and not new tombstone state.
  ASSERT_TRUE((*idx)->Restore(victim).ok());
  ASSERT_TRUE((*idx)->Restore(4000000).ok());
  auto still = (*idx)->Search(t.gen.base.Row(victim), 1);
  ASSERT_TRUE(still.ok());
  EXPECT_EQ((*still)[0].id, victim);
}

TEST(LiveUpdate, InsertBatchIsOneEpochWithConsecutiveIds) {
  auto t = MakeData();
  auto idx = BuildOn(t, "mem:");
  ASSERT_TRUE(idx.ok());
  const uint64_t n0 = (*idx)->n();
  const uint64_t epochs0 = (*idx)->device_stats().epochs_published;
  const auto extras = MakeExtraRows(64);

  auto first = (*idx)->InsertBatch(extras.Row(0),
                                   static_cast<uint32_t>(extras.n()));
  ASSERT_TRUE(first.ok()) << first.status().ToString();
  EXPECT_EQ(*first, n0);
  EXPECT_EQ((*idx)->n(), n0 + extras.n());
  // The whole batch became visible together: one publish.
  EXPECT_EQ((*idx)->device_stats().epochs_published, epochs0 + 1);

  for (uint64_t j = 0; j < extras.n(); ++j) {
    auto hit = (*idx)->Search(extras.Row(j), 1);
    ASSERT_TRUE(hit.ok());
    EXPECT_EQ((*hit)[0].id, n0 + j) << "row " << j;
    EXPECT_EQ((*hit)[0].dist, 0.f) << "row " << j;
  }
}

// ---------------------------------------------------------------------------
// Quiesced parity: overlay path vs. flushed table path
// ---------------------------------------------------------------------------

TEST(LiveUpdate, SaveFlushesOverlayWithBitIdenticalResults) {
  for (const std::string scheme : {"mem:", "file:"}) {
    auto t = MakeData();
    std::string uri = scheme;
    if (scheme == "file:") {
      uri += ::testing::TempDir() + "/e2_live_flush.bin";
    }
    auto idx = BuildOn(t, uri);
    ASSERT_TRUE(idx.ok()) << uri << ": " << idx.status().ToString();
    const uint64_t n0 = (*idx)->n();

    const auto extras = MakeExtraRows(96);
    auto first = (*idx)->InsertBatch(extras.Row(0),
                                     static_cast<uint32_t>(extras.n()));
    ASSERT_TRUE(first.ok());
    const uint32_t removed[] = {11, 42, 99};
    ASSERT_TRUE((*idx)->RemoveBatch(removed, 3).ok());

    // Results through the overlay path (mutations staged, not flushed).
    auto before = (*idx)->SearchBatch(t.gen.queries, 5);
    ASSERT_TRUE(before.ok());

    // Save() quiesces and drains the overlay into the on-device tables.
    const std::string meta = ::testing::TempDir() + "/e2_live_flush.meta";
    ASSERT_TRUE((*idx)->Save(meta).ok());
    EXPECT_EQ((*idx)->device_stats().update_lag, 0u);

    // Same queries through the flushed table path: bit parity.
    auto after = (*idx)->SearchBatch(t.gen.queries, 5);
    ASSERT_TRUE(after.ok());
    ASSERT_EQ(after->results.size(), before->results.size());
    for (size_t q = 0; q < before->results.size(); ++q) {
      ASSERT_EQ(after->results[q].size(), before->results[q].size())
          << uri << " query " << q;
      for (size_t i = 0; i < before->results[q].size(); ++i) {
        EXPECT_EQ(after->results[q][i].id, before->results[q][i].id)
            << uri << " query " << q << " rank " << i;
        EXPECT_FLOAT_EQ(after->results[q][i].dist, before->results[q][i].dist)
            << uri << " query " << q << " rank " << i;
      }
    }
    for (const auto& qs : after->stats) {
      EXPECT_EQ(qs.corrupt_blocks, 0u);
      EXPECT_EQ(qs.io_errors, 0u);
    }
    // Inserted rows still found, removed ids still hidden.
    auto hit = (*idx)->Search(extras.Row(17), 1);
    ASSERT_TRUE(hit.ok());
    EXPECT_EQ((*hit)[0].id, n0 + 17);
    auto hidden = (*idx)->Search(t.gen.base.Row(42), 1);
    ASSERT_TRUE(hidden.ok());
    EXPECT_NE((*hidden)[0].id, 42u);
  }
}

// ---------------------------------------------------------------------------
// Concurrent soak: mutations racing a serving engine
// ---------------------------------------------------------------------------

/// (device URI template, engine shards). "file:" / "uring:" get a
/// concrete temp path substituted in the test body.
using SoakParam = std::tuple<const char*, uint32_t>;

class LiveUpdateSoak : public ::testing::TestWithParam<SoakParam> {};

TEST_P(LiveUpdateSoak, MixedReadWriteSoakKeepsEveryOracle) {
  std::string uri = std::get<0>(GetParam());
  const uint32_t shards = std::get<1>(GetParam());
  if (uri.rfind("uring:", 0) == 0) {
    if (!storage::UringDevice::Available()) {
      GTEST_SKIP() << "io_uring unavailable in this environment";
    }
  }
  if (uri == "file:" || uri == "uring:") {
    uri += ::testing::TempDir() + "/e2_live_soak_" +
           std::to_string(shards) + (uri[0] == 'f' ? "_f.bin" : "_u.bin");
  }

  auto t = MakeData();
  auto idx = BuildOn(t, uri);
  ASSERT_TRUE(idx.ok()) << uri << ": " << idx.status().ToString();
  const uint32_t base_n = static_cast<uint32_t>((*idx)->n());

  // Id roles: [0, 50) removed mid-soak and never restored; [50, 100)
  // churned (removed + restored repeatedly, restored at the end);
  // [100, 300) never touched — stable exact-match targets.
  constexpr uint32_t kDoomed = 50;
  constexpr uint32_t kChurn = 50;
  constexpr uint32_t kStable = 200;
  const auto extras = MakeExtraRows(150);

  core::FutureSink sink;
  ServeSpec serve;
  serve.k = 3;
  serve.max_batch_size = 16;
  serve.search.shards = shards;
  serve.on_result = sink.Callback();
  auto server = (*idx)->Serve(serve);
  ASSERT_TRUE(server.ok()) << server.status().ToString();

  std::atomic<uint32_t> inserted{0};
  std::atomic<bool> doomed_done{false};
  std::atomic<bool> writer_done{false};
  std::atomic<uint64_t> reader_failures{0};

  std::thread writer([&] {
    // Interleave: inserts, the one-way doomed removals, and churn
    // remove/restore cycles, all publishing epochs under live reads.
    for (uint32_t j = 0; j < extras.n(); ++j) {
      auto id = (*idx)->Insert(extras.Row(j));
      ASSERT_TRUE(id.ok()) << id.status().ToString();
      ASSERT_EQ(*id, base_n + j);
      inserted.store(j + 1, std::memory_order_release);
      if (j < kDoomed) {
        ASSERT_TRUE((*idx)->Remove(j).ok());
        if (j + 1 == kDoomed) doomed_done.store(true,
                                                std::memory_order_release);
      }
      const uint32_t churn_id = kDoomed + (j % kChurn);
      ASSERT_TRUE((*idx)->Remove(churn_id).ok());
      ASSERT_TRUE((*idx)->Restore(churn_id).ok());
    }
    // Batch forms too, racing the readers.
    std::vector<uint32_t> churn_ids(kChurn);
    for (uint32_t i = 0; i < kChurn; ++i) churn_ids[i] = kDoomed + i;
    ASSERT_TRUE((*idx)->RemoveBatch(churn_ids.data(), kChurn).ok());
    ASSERT_TRUE((*idx)->RestoreBatch(churn_ids.data(), kChurn).ok());
    writer_done.store(true, std::memory_order_release);
  });

  auto reader = [&](uint64_t seed) {
    uint64_t state = seed;
    auto next = [&state] {
      state = state * 6364136223846793005ULL + 1442695040888963407ULL;
      return static_cast<uint32_t>(state >> 33);
    };
    for (int round = 0; round < 400; ++round) {
      // Pick a target: a stable base id, or an already-published insert.
      const uint32_t pub = inserted.load(std::memory_order_acquire);
      uint32_t want;
      const float* vec;
      if (pub > 0 && next() % 2 == 0) {
        const uint32_t j = next() % pub;
        want = base_n + j;
        vec = extras.Row(j);
      } else {
        want = kDoomed + kChurn + next() % kStable;
        vec = t.gen.base.Row(want);
      }
      const bool check_doomed = doomed_done.load(std::memory_order_acquire);
      auto id = (*server)->Submit(vec, 3);
      if (!id.ok()) {
        ++reader_failures;
        continue;
      }
      core::QueryResult qr = sink.Register(*id).Take();
      if (!qr.status.ok() || qr.stats.partial || qr.stats.corrupt_blocks > 0 ||
          qr.stats.io_errors > 0 || qr.neighbors.empty() ||
          qr.neighbors[0].id != want || qr.neighbors[0].dist != 0.f) {
        ++reader_failures;
        continue;
      }
      if (check_doomed) {
        // Every removal published before this Submit: no doomed id may
        // surface in any result from here on.
        for (const auto& nb : qr.neighbors) {
          if (nb.id < kDoomed) ++reader_failures;
        }
      }
    }
  };
  std::thread r1(reader, 0x9e3779b97f4a7c15ULL);
  std::thread r2(reader, 0xd1b54a32d192ed03ULL);

  writer.join();
  r1.join();
  r2.join();
  EXPECT_EQ(reader_failures.load(), 0u) << uri << " shards=" << shards;

  (*server)->Close();
  (*server)->Wait();
  server->reset();

  // Quiesced sweep through the direct engine: the end state holds.
  ASSERT_TRUE((*idx)->Configure(SearchSpec{shards, 32, 256, false}).ok());
  for (uint32_t d = 0; d < kDoomed; ++d) {
    auto res = (*idx)->Search(t.gen.base.Row(d), 1);
    ASSERT_TRUE(res.ok());
    ASSERT_FALSE(res->empty());
    EXPECT_NE((*res)[0].id, d) << "doomed id resurfaced";
  }
  for (uint32_t c = kDoomed; c < kDoomed + kChurn; ++c) {
    auto res = (*idx)->Search(t.gen.base.Row(c), 1);
    ASSERT_TRUE(res.ok());
    EXPECT_EQ((*res)[0].id, c) << "churned id not restored";
  }
  for (uint64_t j = 0; j < extras.n(); ++j) {
    core::QueryStats qs;
    auto res = (*idx)->Search(extras.Row(j), 1, &qs);
    ASSERT_TRUE(res.ok());
    EXPECT_EQ((*res)[0].id, base_n + j);
    EXPECT_EQ((*res)[0].dist, 0.f);
    EXPECT_EQ(qs.corrupt_blocks, 0u);
    EXPECT_EQ(qs.io_errors, 0u);
  }

  const auto dev = (*idx)->device_stats();
  EXPECT_EQ(dev.updates_applied,
            extras.n() + kDoomed + 2ull * extras.n() + 2ull * kChurn);
  EXPECT_GT(dev.epochs_published, 0u);
  EXPECT_EQ(dev.update_lag, 0u);
}

INSTANTIATE_TEST_SUITE_P(
    Devices, LiveUpdateSoak,
    ::testing::Combine(::testing::Values("mem:", "sim:cssd*4", "file:",
                                         "uring:"),
                       ::testing::Values(1u, 4u)),
    [](const auto& info) {
      std::string name = std::get<0>(info.param);
      for (char& c : name) {
        if (c == ':' || c == '*' || c == '?') c = '_';
      }
      return name + "_s" + std::to_string(std::get<1>(info.param));
    });

// ---------------------------------------------------------------------------
// Fault-injected inserts
// ---------------------------------------------------------------------------

TEST(LiveUpdate, InsertsSurviveInjectedFaultsWithRetry) {
  auto t = MakeData();
  // Build on a clean device, persist, reopen behind the fault + retry
  // stack: every staging read can fail transiently, the retry layer
  // absorbs almost all of it, and the test retries the rest — a failed
  // Insert must roll back cleanly enough that the retry lands intact.
  auto clean = BuildOn(t, "mem:");
  ASSERT_TRUE(clean.ok());
  const std::string meta = ::testing::TempDir() + "/e2_live_fault.meta";
  ASSERT_TRUE((*clean)->Save(meta).ok());
  clean->reset();

  auto idx = Index::Open(
      meta, OpenSpec{"mem:?fault=complete:0.05,seed:11&retry=8"}, t.gen.base);
  ASSERT_TRUE(idx.ok()) << idx.status().ToString();
  const uint64_t n0 = (*idx)->n();

  const auto extras = MakeExtraRows(40);
  for (uint64_t j = 0; j < extras.n(); ++j) {
    Status last = Status::OK();
    bool landed = false;
    for (int attempt = 0; attempt < 6 && !landed; ++attempt) {
      auto id = (*idx)->Insert(extras.Row(j));
      if (id.ok()) {
        EXPECT_EQ(*id, n0 + j);
        landed = true;
      } else {
        last = id.status();
      }
    }
    ASSERT_TRUE(landed) << "row " << j << ": " << last.ToString();
  }

  for (uint64_t j = 0; j < extras.n(); ++j) {
    core::QueryStats qs;
    auto hit = (*idx)->Search(extras.Row(j), 1, &qs);
    ASSERT_TRUE(hit.ok());
    EXPECT_EQ((*hit)[0].id, n0 + j) << "row " << j;
    EXPECT_EQ((*hit)[0].dist, 0.f) << "row " << j;
    EXPECT_EQ(qs.corrupt_blocks, 0u);
  }
  EXPECT_GT((*idx)->device_stats().faults_injected, 0u);
}

}  // namespace
}  // namespace e2lshos
