// Handle to a built E2LSHoS index: the on-device layout plus the small
// DRAM-resident metadata (hash functions and the non-empty-slot bitmap).
//
// The DRAM footprint is intentionally tiny relative to the on-storage
// index — this is the paper's Table 6 story: E2LSHoS keeps only
// "index-related data (the hash table addresses)" in memory.
#pragma once

#include <cmath>
#include <cstdint>
#include <memory>
#include <unordered_set>
#include <vector>

#include "core/layout.h"
#include "data/dataset.h"
#include "lsh/hash_family.h"
#include "lsh/params.h"
#include "storage/block_device.h"

namespace e2lshos::core {

/// \brief Aggregate sizes for Table 6 reporting.
struct IndexSizes {
  uint64_t storage_bytes = 0;      ///< Tables + bucket blocks on device.
  uint64_t table_bytes = 0;        ///< On-storage hash tables alone.
  uint64_t bucket_bytes = 0;       ///< On-storage bucket blocks alone.
  uint64_t dram_index_bytes = 0;   ///< Bitmap + hash functions in DRAM.
  uint64_t total_entries = 0;      ///< Object infos across all buckets.
  uint64_t nonempty_slots = 0;
};

class StorageIndex {
 public:
  StorageIndex() = default;

  const IndexLayout& layout() const { return layout_; }
  const lsh::E2lshParams& params() const { return params_; }
  const lsh::HashFamily& family() const { return family_; }
  storage::BlockDevice* device() const { return device_; }
  uint64_t n() const { return n_; }
  uint32_t dim() const { return dim_; }

  /// True if the (radius, l, slot) bucket has at least one object —
  /// consulted before issuing any I/O ("empty buckets are not counted as
  /// it is easy to avoid issuing I/Os for them", paper Sec. 4.3).
  bool SlotNonEmpty(uint32_t radius_idx, uint32_t l, uint32_t slot) const {
    const uint64_t bit = BitIndex(radius_idx, l, slot);
    return (bitmap_[bit >> 6] >> (bit & 63)) & 1;
  }

  /// True if the object was removed via IndexUpdater::Remove; the query
  /// engine skips such candidates (tombstones live in DRAM only).
  bool IsDeleted(uint32_t id) const {
    return !tombstones_.empty() && tombstones_.count(id) > 0;
  }
  uint64_t num_tombstones() const { return tombstones_.size(); }

  IndexSizes sizes() const { return sizes_; }

  /// Re-tune the per-radius candidate cap S = s_factor * L without
  /// rebuilding (the paper's query-time accuracy knob, Sec. 3.3).
  void SetCandidateCapFactor(double s_factor) {
    params_.s_factor = s_factor;
    params_.S = static_cast<uint64_t>(
        std::max(1.0, std::ceil(s_factor * static_cast<double>(params_.L))));
  }

  /// A view of the same index served from a different device holding an
  /// identical byte image (used to benchmark one build across many
  /// device configurations without re-hashing the database).
  std::unique_ptr<StorageIndex> WithDevice(storage::BlockDevice* device) const {
    auto clone = std::make_unique<StorageIndex>(*this);
    clone->device_ = device;
    return clone;
  }

 private:
  friend class IndexBuilder;
  friend class IndexUpdater;
  friend Status SaveIndexMeta(const StorageIndex& index, const std::string& path);
  friend Result<std::unique_ptr<StorageIndex>> LoadIndexMeta(
      const std::string& path, storage::BlockDevice* device);

  uint64_t BitIndex(uint32_t radius_idx, uint32_t l, uint32_t slot) const {
    return (static_cast<uint64_t>(radius_idx) * layout_.L + l) *
               layout_.slots_per_table() +
           slot;
  }

  IndexLayout layout_;
  lsh::E2lshParams params_;
  lsh::HashFamily family_;
  storage::BlockDevice* device_ = nullptr;
  uint64_t n_ = 0;
  uint32_t dim_ = 0;
  std::vector<uint64_t> bitmap_;
  IndexSizes sizes_;
  uint64_t next_block_idx_ = 0;  ///< Bump allocator over the bucket region.
  std::unordered_set<uint32_t> tombstones_;
};

}  // namespace e2lshos::core
