#include "api/index.h"

#include <sys/stat.h>

#include <algorithm>
#include <utility>

#include "core/persistence.h"
#include "lsh/params.h"

namespace e2lshos {

namespace {

/// Default device size when neither the URI nor the spec names one.
/// Every backend is sparse/demand-paged, so this costs nothing unused.
constexpr uint64_t kDefaultCapacity = 32ULL << 30;

std::string ImageSidecarPath(const std::string& meta_path) {
  return meta_path + ".image";
}

bool IsVolatile(const storage::DeviceUri& uri) {
  return uri.scheme == storage::DeviceUri::Scheme::kMem ||
         uri.scheme == storage::DeviceUri::Scheme::kSim;
}

Result<uint64_t> FileSize(const std::string& path) {
  struct stat st;
  if (::stat(path.c_str(), &st) != 0) {
    return Status::NotFound("cannot stat " + path);
  }
  return static_cast<uint64_t>(st.st_size);
}

}  // namespace

// ---------------------------------------------------------------------------
// Server
// ---------------------------------------------------------------------------

Server::Server(Index* owner, std::unique_ptr<core::SubmissionQueue> queue,
               std::unique_ptr<core::StreamingServer> server)
    : owner_(owner), queue_(std::move(queue)), server_(std::move(server)) {}

Server::~Server() {
  queue_->Close();
  server_->Stop();
  server_->Wait();
  // owner_ is null when the Index was destroyed first (it detached us).
  if (owner_ != nullptr) owner_->serving_ = nullptr;
}

Result<uint64_t> Server::Submit(const float* query, uint32_t k) {
  return queue_->Submit(query, k);
}

Result<uint64_t> Server::TrySubmit(const float* query, uint32_t k) {
  return queue_->TrySubmit(query, k);
}

void Server::Close() { queue_->Close(); }

void Server::Wait() { server_->Wait(); }

void Server::Stop() {
  // Close the queue first: workers stop pulling on Stop(), so a
  // producer blocked in Submit() on a full queue would otherwise wait
  // on a drain that never comes.
  queue_->Close();
  server_->Stop();
  server_->Wait();
}

// ---------------------------------------------------------------------------
// Index
// ---------------------------------------------------------------------------

Index::~Index() {
  // A Server outliving its Index is a documented misuse, but it must
  // not be a use-after-free: stop the serving pipeline while the engine
  // is still alive and detach the Server so its destructor (and any
  // later Submit, which now hits a closed queue) stays safe.
  if (serving_ != nullptr) {
    serving_->queue_->Close();
    serving_->server_->Stop();
    serving_->server_->Wait();
    serving_->owner_ = nullptr;
  }
}

Result<std::unique_ptr<Index>> Index::Build(const IndexSpec& spec,
                                            data::Dataset dataset) {
  if (dataset.empty()) {
    return Status::InvalidArgument("cannot build an index over an empty dataset");
  }
  E2_ASSIGN_OR_RETURN(storage::DeviceUri uri,
                      storage::ParseDeviceUri(spec.device_uri));
  if (uri.direct_io) {
    return Status::InvalidArgument(
        "building needs a buffered device: the index builder issues 8-byte "
        "table writes that O_DIRECT rejects. Build without direct=1, then "
        "Open() the image with a direct=1 URI to serve.");
  }

  lsh::E2lshConfig cfg = spec.lsh;
  if (spec.auto_x_max) cfg.x_max = dataset.XMax();
  E2_ASSIGN_OR_RETURN(const lsh::E2lshParams params,
                      lsh::ComputeParams(dataset.n(), dataset.dim(), cfg));

  storage::DeviceUriOpenOptions open;
  open.create = true;
  open.capacity =
      spec.device_capacity != 0 ? spec.device_capacity : kDefaultCapacity;
  E2_ASSIGN_OR_RETURN(auto device, storage::OpenDeviceUri(uri, open));

  std::unique_ptr<Index> out(new Index());
  out->uri_ = std::move(uri);
  out->base_ = std::move(dataset);
  out->device_ = std::move(device);
  E2_ASSIGN_OR_RETURN(
      out->index_, core::IndexBuilder::Build(out->base_, params,
                                             out->device_.get(), spec.layout));
  return out;
}

Result<std::unique_ptr<Index>> Index::Open(const std::string& path,
                                           const OpenSpec& spec,
                                           data::Dataset dataset) {
  E2_ASSIGN_OR_RETURN(storage::DeviceUri uri,
                      storage::ParseDeviceUri(spec.device_uri));

  std::unique_ptr<Index> out(new Index());
  if (IsVolatile(uri)) {
    // Nothing durable lives behind mem:/sim: — restore the byte image
    // Save() dumped next to the metadata.
    const std::string sidecar = ImageSidecarPath(path);
    auto image_bytes = FileSize(sidecar);
    if (!image_bytes.ok()) {
      return Status::NotFound(
          "no image sidecar " + sidecar + " — a " +
          std::string(uri.scheme_name()) +
          ": index must be Save()d (which writes it) before Open()");
    }
    storage::DeviceUriOpenOptions open;
    open.capacity = std::max(kDefaultCapacity, *image_bytes);
    E2_ASSIGN_OR_RETURN(out->device_, storage::OpenDeviceUri(uri, open));
    E2_RETURN_NOT_OK(
        core::LoadIndexImage(sidecar, out->device_.get()).status());
  } else {
    storage::DeviceUriOpenOptions open;
    open.create = false;  // capacity comes from the backing file
    E2_ASSIGN_OR_RETURN(out->device_, storage::OpenDeviceUri(uri, open));
  }

  E2_ASSIGN_OR_RETURN(out->index_,
                      core::LoadIndexMeta(path, out->device_.get()));
  if (out->index_->n() != dataset.n() || out->index_->dim() != dataset.dim()) {
    return Status::InvalidArgument(
        "index was built over a different dataset shape (index " +
        std::to_string(out->index_->n()) + " x " +
        std::to_string(out->index_->dim()) + ", dataset " +
        std::to_string(dataset.n()) + " x " + std::to_string(dataset.dim()) +
        ")");
  }
  out->uri_ = std::move(uri);
  out->base_ = std::move(dataset);
  return out;
}

Status Index::Save(const std::string& path) const {
  // The volatile-device branch reads the image through raw device polls,
  // which would steal completions from the shard QueueRouters of a live
  // serving run — same single-owner rule as the query entry points.
  E2_RETURN_NOT_OK(FailIfServing("Save"));
  {
    // Sync staged live mutations into the index and the device (the
    // quiescence Flush requires is exactly what FailIfServing plus the
    // facade's single-caller contract provide). Note the saved metadata
    // then records the grown n: reopening needs the base dataset
    // augmented with the inserted rows in insertion order.
    std::lock_guard<std::mutex> lock(live_mu_);
    if (live_ != nullptr) E2_RETURN_NOT_OK(live_->Flush());
  }
  E2_RETURN_NOT_OK(core::SaveIndexMeta(*index_, path));
  if (IsVolatile(uri_)) {
    E2_RETURN_NOT_OK(core::SaveIndexImage(*index_, ImageSidecarPath(path)));
  }
  return Status::OK();
}

Status Index::FailIfServing(const char* op) const {
  if (serving_ != nullptr) {
    return Status::FailedPrecondition(
        std::string(op) +
        " while a Server is live: the engine is single-owner; destroy the "
        "Server first");
  }
  return Status::OK();
}

Status Index::EnsureEngine() {
  if (engine_ != nullptr) return Status::OK();
  core::ShardOptions opts;
  opts.num_shards = search_.shards;
  const uint32_t resolved = core::ResolveShardCount(search_.shards);
  opts.total_contexts = search_.contexts_per_shard * resolved;
  opts.total_inflight_ios = search_.inflight_per_shard * resolved;
  opts.synchronous = search_.synchronous;
  // The URI's queue knobs: queues=0 forces the QueueRouter shim, queues=N
  // caps native queues at N (beyond that the whole set routes), the
  // default lets every shard take a native queue when the device has
  // them. fixed=1 registers each shard engine's I/O arena at startup.
  if (uri_.queues == 0) {
    opts.queue_mode = core::QueueMode::kRouter;
  } else if (uri_.queues != storage::DeviceUri::kQueuesAuto) {
    opts.max_native_queues = uri_.queues;
  }
  opts.register_fixed_buffers = uri_.fixed_buffers;
  engine_ = std::make_unique<core::ShardedQueryEngine>(index_.get(), &base_,
                                                       opts);
  return Status::OK();
}

Status Index::Configure(const SearchSpec& spec) {
  E2_RETURN_NOT_OK(FailIfServing("Configure"));
  if (engine_ != nullptr &&
      spec.shards == search_.shards &&
      spec.contexts_per_shard == search_.contexts_per_shard &&
      spec.inflight_per_shard == search_.inflight_per_shard &&
      spec.synchronous == search_.synchronous) {
    return Status::OK();
  }
  search_ = spec;
  engine_.reset();
  return Status::OK();
}

uint32_t Index::num_shards() const {
  return engine_ != nullptr ? engine_->num_shards()
                            : core::ResolveShardCount(search_.shards);
}

Status Index::SetCandidateCapFactor(double s_factor) {
  E2_RETURN_NOT_OK(FailIfServing("SetCandidateCapFactor"));
  if (s_factor <= 0) {
    return Status::InvalidArgument("s_factor must be positive");
  }
  index_->SetCandidateCapFactor(s_factor);
  engine_.reset();  // shard views copy the params; rebuild on next query
  return Status::OK();
}

Result<std::vector<util::Neighbor>> Index::Search(const float* query,
                                                  uint32_t k,
                                                  core::QueryStats* stats) {
  E2_RETURN_NOT_OK(FailIfServing("Search"));
  E2_RETURN_NOT_OK(EnsureEngine());
  // A single query runs on shard 0's engine; with one shard that is the
  // degenerate (plain QueryEngine) path.
  return engine_->shard_engine(0)->Search(query, k, stats);
}

Result<core::BatchResult> Index::SearchBatch(const data::Dataset& queries,
                                             uint32_t k) {
  E2_RETURN_NOT_OK(FailIfServing("SearchBatch"));
  E2_RETURN_NOT_OK(EnsureEngine());
  return engine_->SearchBatch(queries, k);
}

core::LiveUpdater* Index::EnsureLiveUpdater() {
  std::lock_guard<std::mutex> lock(live_mu_);
  if (live_ == nullptr) {
    live_ = std::make_unique<core::LiveUpdater>(index_.get());
  }
  return live_.get();
}

Result<uint32_t> Index::Insert(const float* row) {
  return EnsureLiveUpdater()->Insert(row);
}

Result<uint32_t> Index::InsertBatch(const float* rows, uint32_t count) {
  return EnsureLiveUpdater()->InsertBatch(rows, count);
}

Status Index::Remove(uint32_t id) { return EnsureLiveUpdater()->Remove(id); }

Status Index::RemoveBatch(const uint32_t* ids, uint32_t count) {
  return EnsureLiveUpdater()->RemoveBatch(ids, count);
}

Status Index::Restore(uint32_t id) { return EnsureLiveUpdater()->Restore(id); }

Status Index::RestoreBatch(const uint32_t* ids, uint32_t count) {
  return EnsureLiveUpdater()->RestoreBatch(ids, count);
}

uint64_t Index::n() const {
  std::lock_guard<std::mutex> lock(live_mu_);
  return live_ != nullptr ? live_->n() : index_->n();
}

storage::DeviceStats Index::device_stats() const {
  storage::DeviceStats stats = device_->stats();
  std::lock_guard<std::mutex> lock(live_mu_);
  if (live_ != nullptr) {
    const core::LiveUpdater::Counters c = live_->counters();
    stats.updates_applied = c.inserts + c.removes + c.restores;
    stats.epochs_published = c.epochs_published;
    stats.update_staged_bytes = c.staged_bytes;
    stats.update_lag = c.pending_ops;
  }
  return stats;
}

Result<std::unique_ptr<Server>> Index::Serve(const ServeSpec& spec) {
  E2_RETURN_NOT_OK(Configure(spec.search));  // also fails while serving
  E2_RETURN_NOT_OK(EnsureEngine());

  core::ServerOptions opts;
  opts.k = spec.k;
  opts.max_batch_size = spec.max_batch_size;
  opts.max_wait_us = spec.max_wait_us;
  opts.deadline_us = spec.deadline_us;
  opts.on_result = spec.on_result;

  auto queue =
      std::make_unique<core::SubmissionQueue>(dim(), spec.queue_capacity);
  auto streaming =
      std::make_unique<core::StreamingServer>(engine_.get(), opts);
  E2_RETURN_NOT_OK(streaming->Start(queue.get()));

  std::unique_ptr<Server> server(
      new Server(this, std::move(queue), std::move(streaming)));
  serving_ = server.get();
  return server;
}

}  // namespace e2lshos
