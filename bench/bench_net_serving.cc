// Network serving: what the wire costs, and how concurrent connections
// scale against one daemon.
//
// The streaming bench measures enqueue→completion latency with the
// producer in-process; this bench puts the net::Daemon's UNIX-socket
// wire protocol in the loop. Baseline: one in-process SearchBatch over
// the query set. Then a sweep over client-connection counts, each
// client round-tripping SearchBatch frames against the daemon, so the
// rows separate protocol overhead (1 client vs. in-process) from
// connection-level concurrency (N clients feeding the shared MPMC
// submission queue). Expected shape: a single connection pays the
// serialize/copy/wake tax per round trip; a handful of connections
// recover most of the engine's batch capacity because handlers overlap
// their waits inside the shard micro-batcher.
//
// --shards S (default 2), --queries Q, --json PATH.
#include "common.h"

#include <sys/types.h>
#include <unistd.h>

#include <thread>

#include "api/index.h"
#include "net/client.h"
#include "net/daemon.h"
#include "util/clock.h"

using namespace e2lshos;

namespace {

struct SweepPoint {
  uint32_t clients = 0;
  uint64_t completed = 0;
  uint64_t failed = 0;
  double wall_s = 0;
  uint64_t p50_ns = 0;   ///< Per-round-trip wire latency.
  uint64_t p99_ns = 0;
};

uint64_t Percentile(std::vector<uint64_t>* lat, double q) {
  if (lat->empty()) return 0;
  const size_t idx = static_cast<size_t>(q * static_cast<double>(lat->size() - 1));
  std::nth_element(lat->begin(), lat->begin() + static_cast<long>(idx), lat->end());
  return (*lat)[idx];
}

SweepPoint RunClients(const std::string& endpoint, const data::Dataset& queries,
                      uint32_t k, uint32_t clients, uint64_t rounds,
                      uint32_t batch) {
  SweepPoint point;
  point.clients = clients;
  std::vector<std::thread> threads;
  std::mutex mu;
  std::vector<uint64_t> latencies;
  std::atomic<uint64_t> completed{0}, failed{0};
  const uint64_t t0 = util::NowNs();
  for (uint32_t c = 0; c < clients; ++c) {
    threads.emplace_back([&, c] {
      auto client = net::Client::Connect(endpoint);
      if (!client.ok()) {
        failed += rounds * batch;
        return;
      }
      std::vector<uint64_t> local;
      local.reserve(rounds);
      for (uint64_t r = 0; r < rounds; ++r) {
        // Each client walks the query set from its own offset so the
        // daemon sees a mixed stream, not N copies of query 0.
        const uint64_t off = (c * 37 + r * batch) % queries.n();
        const uint32_t count = static_cast<uint32_t>(
            std::min<uint64_t>(batch, queries.n() - off));
        const uint64_t s = util::NowNs();
        auto res = (*client)->SearchBatch("bench", queries.Row(off), count,
                                          queries.dim(), k);
        if (!res.ok()) {
          failed += count;
          continue;
        }
        local.push_back(util::NowNs() - s);
        for (const auto& qr : *res) {
          if (qr.status.ok()) {
            ++completed;
          } else {
            ++failed;
          }
        }
      }
      std::lock_guard<std::mutex> lock(mu);
      latencies.insert(latencies.end(), local.begin(), local.end());
    });
  }
  for (auto& t : threads) t.join();
  point.wall_s = static_cast<double>(util::NowNs() - t0) / 1e9;
  point.completed = completed.load();
  point.failed = failed.load();
  point.p50_ns = Percentile(&latencies, 0.50);
  point.p99_ns = Percentile(&latencies, 0.99);
  return point;
}

}  // namespace

int main(int argc, char** argv) {
  auto args = bench::Args::Parse(argc, argv);
  if (args.shards == 0) args.shards = 2;
  const uint32_t k = 10;

  auto spec = data::GetDatasetSpec(args.dataset.empty() ? "SIFT" : args.dataset);
  if (!spec.ok()) {
    std::fprintf(stderr, "error: %s\n", spec.status().ToString().c_str());
    return 1;
  }
  const uint64_t n = args.n > 0 ? args.n : (args.fast ? 10000 : 30000);
  auto w = bench::MakeWorkload(*spec, n, args.queries ? args.queries : 256, k);
  if (!w.ok()) {
    std::fprintf(stderr, "error: %s\n", w.status().ToString().c_str());
    return 1;
  }

  IndexSpec ispec;
  ispec.device_uri = "sim:cssd*4?iface=io_uring";
  auto index = Index::Build(ispec, w->gen.base);  // copy: baseline needs it too
  if (!index.ok()) {
    std::fprintf(stderr, "error: %s\n", index.status().ToString().c_str());
    return 1;
  }

  // In-process anchor: the same engine shape the daemon will serve.
  SearchSpec search;
  search.shards = args.shards;
  if (Status st = (*index)->Configure(search); !st.ok()) {
    std::fprintf(stderr, "error: %s\n", st.ToString().c_str());
    return 1;
  }
  auto batch = (*index)->SearchBatch(w->gen.queries, k);
  if (!batch.ok()) {
    std::fprintf(stderr, "error: %s\n", batch.status().ToString().c_str());
    return 1;
  }
  const double capacity = batch->QueriesPerSecond();
  std::printf("dataset %s, n=%llu, shards=%u, in-process batch %.0f qps\n",
              spec->name.c_str(), static_cast<unsigned long long>(w->n()),
              (*index)->num_shards(), capacity);

  net::DaemonOptions dopts;
  dopts.unix_path = "/tmp/e2lshos_bench_net_" +
                    std::to_string(static_cast<unsigned long>(::getpid())) +
                    ".sock";
  dopts.serve.k = k;
  dopts.serve.search = search;
  dopts.serve.queue_capacity = 2048;
  net::Daemon daemon(std::move(dopts));
  if (Status st = daemon.AddIndex("bench", std::move(*index)); !st.ok()) {
    std::fprintf(stderr, "error: %s\n", st.ToString().c_str());
    return 1;
  }
  if (Status st = daemon.Start(); !st.ok()) {
    std::fprintf(stderr, "error: %s\n", st.ToString().c_str());
    return 1;
  }
  const std::string endpoint =
      "unix:/tmp/e2lshos_bench_net_" +
      std::to_string(static_cast<unsigned long>(::getpid())) + ".sock";

  auto json = args.OpenJson();
  bench::PrintHeader("Network serving (" + spec->name +
                         "): connections vs. remote throughput",
                     {"clients", "remote qps", "% of in-process", "rt p50 us",
                      "rt p99 us", "failed"});

  const uint32_t batch_size = 64;
  const uint64_t rounds = args.fast ? 8 : 32;
  for (const uint32_t clients : {1u, 2u, 4u, 8u, 16u}) {
    const SweepPoint p = RunClients(endpoint, w->gen.queries, k, clients,
                                    rounds, batch_size);
    const double qps =
        p.wall_s > 0 ? static_cast<double>(p.completed) / p.wall_s : 0;
    bench::PrintRow({std::to_string(p.clients), bench::Fmt(qps, 0),
                     bench::Fmt(capacity > 0 ? 100.0 * qps / capacity : 0, 1),
                     bench::Fmt(static_cast<double>(p.p50_ns) / 1e3, 1),
                     bench::Fmt(static_cast<double>(p.p99_ns) / 1e3, 1),
                     std::to_string(p.failed)});
    if (json != nullptr) {
      util::JsonRow row;
      row.Set("bench", "net_serving")
          .Set("dataset", spec->name)
          .Set("shards", static_cast<uint64_t>(args.shards))
          .Set("k", static_cast<uint64_t>(k))
          .Set("clients", static_cast<uint64_t>(p.clients))
          .Set("batch", static_cast<uint64_t>(batch_size))
          .Set("remote_qps", qps)
          .Set("inprocess_qps", capacity)
          .Set("rt_p50_ns", p.p50_ns)
          .Set("rt_p99_ns", p.p99_ns)
          .Set("completed", p.completed)
          .Set("failed", p.failed);
      json->Write(row);
    }
  }

  daemon.RequestStop();
  daemon.Wait();
  std::printf(
      "\nExpected shape: one connection pays the per-round-trip protocol "
      "tax;\na handful of concurrent connections overlap inside the shard "
      "micro-batcher\nand close most of the gap to the in-process batch "
      "rate.\n");
  return 0;
}
