// Continuous query serving over a ShardedQueryEngine.
//
// The batch API materializes a whole Dataset before any I/O is issued,
// so the device queue depth collapses between batches — exactly the
// regime the paper's Fig. 1(B) asynchronous pipeline is built to avoid.
// StreamingServer keeps the queue deep under a live arrival process: one
// worker per engine shard pulls from a shared QueryStream, forms
// micro-batches under a (max_batch_size, max_wait_us) policy, and runs
// them on its own per-core QueryEngine. There is no global batch
// barrier: a shard that finishes its micro-batch immediately pulls the
// next one while other shards are still in flight.
//
// Results are delivered per query through a completion callback (invoked
// from shard worker threads) and/or pollable future handles (FutureSink).
// Per-query enqueue→completion latency and sustained QPS are recorded in
// per-shard util::LatencyRecorders, merged on stats().
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <unordered_map>
#include <vector>

#include "core/query_stream.h"
#include "core/sharded_engine.h"
#include "util/stats.h"

namespace e2lshos::core {

/// \brief One delivered completion. `status` is per query: an engine
/// failure on a micro-batch fails each of its queries individually
/// rather than tearing down the pipeline. Partial I/O failures that the
/// engine absorbed best-effort surface in `stats.io_errors` with an OK
/// status (same contract as the batch API).
struct QueryResult {
  uint64_t id = 0;
  Status status = Status::OK();
  std::vector<util::Neighbor> neighbors;
  QueryStats stats;
  uint64_t latency_ns = 0;  ///< Enqueue-to-completion, queueing included.
};

struct ServerOptions {
  uint32_t k = 10;
  /// Micro-batch policy: a shard worker dispatches as soon as it has
  /// `max_batch_size` queries, or `max_wait_us` after the first pulled
  /// query of the forming batch — whichever comes first. Size 1 is
  /// pure per-query dispatch (lowest latency, most per-batch overhead).
  uint32_t max_batch_size = 64;
  uint64_t max_wait_us = 200;
  /// Load shedding: a pulled query that already waited longer than this
  /// in the stream is dropped — delivered immediately with
  /// ResourceExhausted and counted in stats().rejected — instead of
  /// being dispatched. Past saturation the submission queue's wait grows
  /// without bound; shedding keeps the p99 of *served* queries bounded
  /// and turns overload into an explicit, countable signal. 0 = off.
  uint64_t deadline_us = 0;
  /// Invoked once per query from shard worker threads; must be
  /// thread-safe. May be empty when a FutureSink (or stats-only soak)
  /// is the consumer.
  std::function<void(QueryResult&&)> on_result;
};

/// \brief Aggregate serving metrics, merged across shard workers.
struct StreamingSnapshot {
  uint64_t completed = 0;  ///< Results delivered (OK or failed).
  uint64_t failed = 0;     ///< Delivered with !status.ok().
  uint64_t rejected = 0;   ///< Shed before dispatch (deadline_us exceeded).
  uint64_t batches = 0;    ///< Micro-batches dispatched.
  double mean_batch_size = 0.0;
  double mean_latency_ns = 0.0;
  uint64_t p50_ns = 0;
  uint64_t p95_ns = 0;
  uint64_t p99_ns = 0;
  uint64_t max_ns = 0;
  double sustained_qps = 0.0;  ///< Completions/sec over a sliding window.
  double overall_qps = 0.0;    ///< Completions / time since Start.
};

class StreamingServer {
 public:
  /// The engine must outlive the server. While the server is running it
  /// owns the engine's shard engines exclusively; do not call
  /// ShardedQueryEngine::SearchBatch concurrently.
  StreamingServer(ShardedQueryEngine* engine, const ServerOptions& options);
  ~StreamingServer();

  StreamingServer(const StreamingServer&) = delete;
  StreamingServer& operator=(const StreamingServer&) = delete;

  /// Spawn one worker per shard pulling from `stream` (which must
  /// outlive the serving run). Fails if already running, if k == 0, or
  /// on a stream/engine dimension mismatch.
  Status Start(QueryStream* stream);

  /// Block until every worker exits: the stream reported kClosed and all
  /// pulled queries were delivered, or Stop() was called.
  void Wait();

  /// Request early shutdown: workers stop pulling new queries, finish
  /// the micro-batches already formed or in flight, and deliver their
  /// completions exactly once. Queries still inside the stream are never
  /// pulled and never delivered. Returns immediately; pair with Wait().
  void Stop();

  /// Convenience: Start + Wait.
  Status Serve(QueryStream* stream);

  bool running() const;

  /// Merged metrics; callable at any time, including mid-run.
  StreamingSnapshot stats() const;

 private:
  struct ShardState {
    mutable std::mutex mu;
    util::LatencyRecorder recorder;
    uint64_t completed = 0;
    uint64_t failed = 0;
    uint64_t rejected = 0;
    uint64_t batches = 0;
    uint64_t batched_queries = 0;
  };

  void WorkerLoop(uint32_t shard);
  /// Pull up to max_batch_size queries; returns true when the stream is
  /// closed (terminal for the worker once the batch is flushed). Pulled
  /// queries already past deadline_us land in `shed` instead.
  bool FormBatch(std::vector<StreamQuery>* batch,
                 std::vector<StreamQuery>* shed);
  void RunBatch(uint32_t shard, std::vector<StreamQuery>* batch);
  /// Deliver shed queries as rejected results (no engine dispatch).
  void ShedQueries(uint32_t shard, std::vector<StreamQuery>* shed);

  ShardedQueryEngine* engine_;
  ServerOptions options_;
  QueryStream* stream_ = nullptr;
  std::vector<std::unique_ptr<ShardState>> shards_;
  std::vector<std::thread> workers_;
  /// Workers still inside WorkerLoop; the last one out notifies the
  /// stream (QueryStream::ConsumerStopped) so producers blocked on a
  /// full SubmissionQueue wake with an error instead of waiting for a
  /// drain that will never come.
  std::atomic<uint32_t> live_workers_{0};
  std::atomic<bool> stop_{false};
  bool running_ = false;
  uint64_t start_ns_ = 0;
  mutable std::mutex mu_;  ///< Guards running_ / workers_ lifecycle.
};

/// \brief Turns per-query callbacks into pollable handles.
///
/// Typical flow with a SubmissionQueue:
///   FutureSink sink;
///   ServerOptions opts; opts.on_result = sink.Callback();
///   ... server.Start(&queue) ...
///   auto id = queue.Submit(vec);
///   QueryFuture fut = sink.Register(*id);
///   ... fut.Ready() / fut.Take() ...
/// Registration and delivery may race in either order; a result that
/// arrives before Register is held until claimed.
class QueryFuture {
 public:
  QueryFuture() = default;

  /// Non-blocking readiness poll.
  bool Ready() const;

  /// Block until delivered, then move the result out. Call at most once.
  /// A default-constructed (unbound) future returns FailedPrecondition.
  QueryResult Take();

 private:
  friend class FutureSink;
  struct State {
    std::mutex mu;
    std::condition_variable cv;
    bool ready = false;
    QueryResult result;
  };
  std::shared_ptr<State> state_;
};

class FutureSink {
 public:
  /// `max_unclaimed` bounds the stash of results delivered before their
  /// Register() call. The stash only needs to cover the race window
  /// between Submit() returning an id and Register(id); results beyond
  /// the cap are dropped (counted in dropped()) rather than accumulated
  /// forever — a fire-and-forget producer would otherwise leak one
  /// QueryResult per unregistered query.
  explicit FutureSink(size_t max_unclaimed = 65536)
      : max_unclaimed_(max_unclaimed) {}

  QueryFuture Register(uint64_t id);
  void Deliver(QueryResult&& result);
  std::function<void(QueryResult&&)> Callback() {
    return [this](QueryResult&& r) { Deliver(std::move(r)); };
  }

  /// Fail every future still waiting with `status` (each becomes ready;
  /// Take() returns the error). Call after StreamingServer::Stop()+Wait()
  /// — queries the server never pulled are never delivered, so their
  /// futures would otherwise block forever.
  void FailPending(const Status& status);

  /// Results delivered but never Register()ed and still stashed.
  size_t unclaimed() const;
  /// Unregistered results dropped because the stash was at capacity.
  uint64_t dropped() const;

 private:
  const size_t max_unclaimed_;
  mutable std::mutex mu_;
  std::unordered_map<uint64_t, std::shared_ptr<QueryFuture::State>> waiting_;
  std::unordered_map<uint64_t, QueryResult> unclaimed_;
  uint64_t dropped_ = 0;
};

}  // namespace e2lshos::core
