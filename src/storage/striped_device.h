// RAID-0-style striping across multiple block devices.
//
// The paper scales random-read IOPS by adding drives (Table 5, Fig. 15:
// cSSD x 1..6). Hash buckets are spread across drives by striping the
// address space at sector (512 B) granularity; since E2LSHoS never issues
// a request crossing a sector boundary, each request maps to exactly one
// child device.
#pragma once

#include <atomic>
#include <memory>
#include <vector>

#include "storage/block_device.h"
#include "storage/multi_queue.h"

namespace e2lshos::storage {

class StripedDevice : public BlockDevice, public MultiQueueDevice {
 public:
  /// Construct from >= 1 child devices. Capacity is
  /// min(child capacity) * children, striped at 512 B.
  static Result<std::unique_ptr<StripedDevice>> Create(
      std::vector<std::unique_ptr<BlockDevice>> children);

  Status SubmitRead(const IoRequest& req) override;
  size_t PollCompletions(IoCompletion* out, size_t max) override;
  Status Write(uint64_t offset, const void* data, uint32_t length) override;
  uint64_t capacity() const override { return capacity_; }
  /// The strictest child constraint. Create() rejects children whose
  /// alignment exceeds the 512-byte stripe unit, so this never exceeds
  /// kSectorBytes.
  uint32_t io_alignment() const override { return io_alignment_; }
  uint32_t outstanding() const override;
  std::string name() const override;
  DeviceStats stats() const override;
  void ResetStats() override;

  size_t num_children() const { return children_.size(); }
  BlockDevice* child(size_t i) { return children_[i].get(); }

  /// Native queues by composition: a stripe queue bundles one native
  /// queue per child, so a shard submitting through it reaches every
  /// drive's private ring without crossing another shard's queues.
  /// Available only when EVERY child is multi-queue capable (all-native
  /// or nothing — AcquireQueues falls back to the router otherwise).
  MultiQueueDevice* multi_queue() override;
  uint32_t max_queues() const override;
  Result<std::unique_ptr<BlockDevice>> CreateQueue(
      const QueueOptions& options) override;

 private:
  class Queue;  // defined in striped_device.cc

  explicit StripedDevice(std::vector<std::unique_ptr<BlockDevice>> children);

  /// Translate a logical extent to (child index, child offset). The extent
  /// must not cross a sector boundary.
  Status Translate(uint64_t offset, uint32_t length, size_t* child,
                   uint64_t* child_offset) const;

  std::vector<std::unique_ptr<BlockDevice>> children_;
  uint64_t capacity_ = 0;
  uint32_t io_alignment_ = 1;
  /// Concurrent pollers (e.g. a QueueRouter serving several engine
  /// shards) each advance the round-robin start without locking.
  std::atomic<uint64_t> poll_cursor_{0};
};

}  // namespace e2lshos::storage
