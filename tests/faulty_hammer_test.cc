// TSan hammer for FaultyDevice's corrupt path (and the injection lanes
// generally): the scramble must happen entirely before a completion is
// harvested by the caller — the device must NEVER touch a buffer after
// handing its completion back, because engines immediately reuse or
// free harvested buffers. Each worker thread drives its own native
// queue (plus one thread on the device-level lane), and overwrites
// every harvested buffer the instant it sees the completion. Run under
// TSan (the `concurrency` CTest label), any late scramble is a reported
// race; natively, the assertions still pin completion accounting.
#include <gtest/gtest.h>

#include <atomic>
#include <cstring>
#include <memory>
#include <thread>
#include <vector>

#include "storage/device_registry.h"
#include "storage/faulty_device.h"
#include "storage/memory_device.h"

namespace e2lshos::storage {
namespace {

constexpr uint64_t kCapacity = 16ULL << 20;
constexpr uint32_t kReadBytes = 512;

/// Drive one endpoint (a native queue or the device itself): submit up
/// to `depth` reads at deterministic offsets, and the moment a
/// completion is harvested, scribble over its buffer — the exact
/// pattern that races with a scramble-after-publish bug.
void Hammer(BlockDevice* dev, uint64_t rounds, uint32_t depth,
            uint64_t seed, std::atomic<uint64_t>* completed) {
  std::vector<std::vector<uint8_t>> bufs(depth,
                                         std::vector<uint8_t>(kReadBytes));
  std::vector<bool> busy(depth, false);
  uint64_t submitted = 0, harvested = 0;
  uint64_t state = seed;
  IoCompletion comps[64];
  while (harvested < rounds) {
    for (uint32_t slot = 0; slot < depth && submitted < rounds; ++slot) {
      if (busy[slot]) continue;
      state = state * 6364136223846793005ULL + 1442695040888963407ULL;
      IoRequest req;
      req.offset = (state % (kCapacity / kReadBytes)) * kReadBytes;
      req.buf = bufs[slot].data();
      req.length = kReadBytes;
      req.user_data = slot;
      if (dev->SubmitRead(req).ok()) {
        busy[slot] = true;
        ++submitted;
      }
      // Injected submit failure: the slot stays free, try again later.
    }
    const size_t n = dev->PollCompletions(comps, 64);
    for (size_t i = 0; i < n; ++i) {
      const uint32_t slot = static_cast<uint32_t>(comps[i].user_data);
      ASSERT_LT(slot, depth);
      ASSERT_TRUE(busy[slot]);
      busy[slot] = false;
      ++harvested;
      // The race detector's tripwire: the buffer is ours again NOW.
      std::memset(bufs[slot].data(), 0xDD, kReadBytes);
    }
  }
  completed->fetch_add(harvested, std::memory_order_relaxed);
}

TEST(FaultyHammer, ScrambleNeverTouchesHarvestedBuffers) {
  // mem: has native queues; every fault class is armed at once.
  auto inner = MemoryDevice::Create(kCapacity);
  ASSERT_TRUE(inner.ok());
  std::vector<uint8_t> image(1 << 20, 0xAB);
  ASSERT_TRUE((*inner)
                  ->Write(0, image.data(),
                          static_cast<uint32_t>(image.size()))
                  .ok());

  FaultyDevice::Options opt;
  opt.submit_fail_rate = 0.05;
  opt.completion_fail_rate = 0.05;
  opt.corrupt_rate = 0.30;
  opt.stall_rate = 0.05;
  opt.stall_usec = 100;
  opt.seed = 21;
  FaultyDevice faulty(inner->get(), opt);

  constexpr uint32_t kThreads = 4;
  constexpr uint64_t kRounds = 4000;
  std::atomic<uint64_t> completed{0};
  std::vector<std::thread> threads;
  std::vector<std::unique_ptr<BlockDevice>> queues;
  ASSERT_NE(faulty.multi_queue(), nullptr);
  for (uint32_t t = 0; t < kThreads; ++t) {
    auto q = faulty.CreateQueue({});
    ASSERT_TRUE(q.ok());
    queues.push_back(std::move(q.value()));
  }
  for (uint32_t t = 0; t < kThreads; ++t) {
    threads.emplace_back(Hammer, queues[t].get(), kRounds, 32, 1000 + t,
                         &completed);
  }
  // One more thread on the device-level lane, concurrently.
  threads.emplace_back(Hammer, static_cast<BlockDevice*>(&faulty), kRounds,
                       32, 999, &completed);
  for (auto& th : threads) th.join();

  EXPECT_EQ(completed.load(), kRounds * (kThreads + 1));
  EXPECT_EQ(faulty.outstanding(), 0u);
  // With these rates over ~20k reads, every fault class must have fired.
  EXPECT_GT(faulty.injected_submit_failures(), 0u);
  EXPECT_GT(faulty.injected_completion_failures(), 0u);
  EXPECT_GT(faulty.injected_corruptions(), 0u);
  EXPECT_GT(faulty.injected_stalls(), 0u);
}

TEST(FaultyHammer, UriStackSurvivesConcurrentQueues) {
  // Same hammer through the full URI stack (fault inside retry): retry
  // lanes must also never touch harvested buffers, and exhausted
  // retries must still complete every request exactly once.
  auto dev = OpenDeviceUri(
      "mem:?capacity=16777216&fault=submit:0.05,complete:0.1,corrupt:0.2,"
      "stall:100,stallp:0.05,seed:3&retry=3,backoff:50",
      DeviceUriOpenOptions{});
  ASSERT_TRUE(dev.ok());
  constexpr uint32_t kThreads = 4;
  constexpr uint64_t kRounds = 2000;
  std::atomic<uint64_t> completed{0};
  std::vector<std::unique_ptr<BlockDevice>> queues;
  ASSERT_NE((*dev)->multi_queue(), nullptr);
  for (uint32_t t = 0; t < kThreads; ++t) {
    auto q = (*dev)->multi_queue()->CreateQueue({});
    ASSERT_TRUE(q.ok());
    queues.push_back(std::move(q.value()));
  }
  std::vector<std::thread> threads;
  for (uint32_t t = 0; t < kThreads; ++t) {
    threads.emplace_back(Hammer, queues[t].get(), kRounds, 16, 500 + t,
                         &completed);
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(completed.load(), kRounds * kThreads);
  const DeviceStats stats = (*dev)->stats();
  EXPECT_GT(stats.faults_injected, 0u);
  EXPECT_GT(stats.retries, 0u);
}

}  // namespace
}  // namespace e2lshos::storage
