#include "data/metrics.h"

#include <cmath>

#include "util/distance.h"
#include "util/rng.h"

namespace e2lshos::data {

HardnessMetrics EstimateHardness(const Dataset& base, const Dataset& queries,
                                 const GroundTruth& gt, uint32_t lid_k,
                                 uint64_t pair_samples, uint64_t seed) {
  HardnessMetrics out;
  if (base.n() == 0 || queries.n() == 0 || gt.num_queries() == 0) return out;

  util::Rng rng(seed);
  const uint32_t d = base.dim();

  // Mean query-to-random-point distance (sampled).
  double dist_sum = 0.0;
  uint64_t dist_count = 0;
  for (uint64_t s = 0; s < pair_samples; ++s) {
    const uint64_t q = rng.NextU64Below(queries.n());
    const uint64_t i = rng.NextU64Below(base.n());
    dist_sum += std::sqrt(util::SquaredL2(queries.Row(q), base.Row(i), d));
    ++dist_count;
  }
  out.mean_distance = dist_sum / static_cast<double>(dist_count);

  // Mean NN distance and LID via the MLE estimator
  //   LID(q) = - ( (1/k) sum_{i<k} ln(r_i / r_k) )^{-1}
  double nn_sum = 0.0;
  double lid_sum = 0.0;
  uint64_t lid_count = 0;
  const uint32_t k = std::min<uint32_t>(lid_k, gt.k());
  for (uint64_t q = 0; q < gt.num_queries(); ++q) {
    const auto& ex = gt.ForQuery(q);
    if (ex.empty()) continue;
    nn_sum += ex[0].dist;
    if (k >= 2 && ex.size() >= k) {
      const double rk = ex[k - 1].dist;
      if (rk > 1e-12) {
        double acc = 0.0;
        uint32_t valid = 0;
        for (uint32_t i = 0; i + 1 < k; ++i) {
          const double ri = std::max<double>(ex[i].dist, 1e-12);
          acc += std::log(ri / rk);
          ++valid;
        }
        if (valid > 0 && acc < 0.0) {
          lid_sum += -static_cast<double>(valid) / acc;
          ++lid_count;
        }
      }
    }
  }
  out.mean_nn_distance = nn_sum / static_cast<double>(gt.num_queries());
  out.lid = lid_count ? lid_sum / static_cast<double>(lid_count) : 0.0;
  out.rc = out.mean_nn_distance > 1e-12 ? out.mean_distance / out.mean_nn_distance : 0.0;
  return out;
}

}  // namespace e2lshos::data
