// Tests for Multi-Probe LSH: perturbation sequence properties and the
// accuracy benefit on the in-memory index.
#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "data/generators.h"
#include "data/ground_truth.h"
#include "e2lsh/in_memory.h"
#include "lsh/multi_probe.h"

namespace e2lshos::lsh {
namespace {

TEST(MultiProbeSequence, ScoresNonDecreasing) {
  std::vector<float> residuals{0.1f, 0.45f, 0.8f, 0.3f};
  MultiProbeSequence seq(residuals);
  std::vector<int8_t> deltas;
  double prev = -1.0;
  int count = 0;
  while (seq.Next(&deltas) && count < 50) {
    double score = 0;
    for (size_t j = 0; j < deltas.size(); ++j) {
      if (deltas[j] == -1) score += residuals[j] * residuals[j];
      if (deltas[j] == +1) score += (1 - residuals[j]) * (1 - residuals[j]);
    }
    EXPECT_GE(score, prev - 1e-6);
    prev = score;
    ++count;
  }
  EXPECT_GT(count, 10);
}

TEST(MultiProbeSequence, FirstProbeFlipsNearestBoundary) {
  // Component 2 sits at 0.95: its upper boundary (distance 0.05) is the
  // cheapest single perturbation.
  std::vector<float> residuals{0.5f, 0.5f, 0.95f, 0.5f};
  MultiProbeSequence seq(residuals);
  std::vector<int8_t> deltas;
  ASSERT_TRUE(seq.Next(&deltas));
  EXPECT_EQ(deltas[2], +1);
  EXPECT_EQ(deltas[0], 0);
  EXPECT_EQ(deltas[1], 0);
  EXPECT_EQ(deltas[3], 0);
}

TEST(MultiProbeSequence, NoComponentPerturbedBothWays) {
  std::vector<float> residuals{0.5f, 0.5f, 0.5f};
  MultiProbeSequence seq(residuals);
  std::vector<int8_t> deltas;
  while (seq.Next(&deltas)) {
    for (const int8_t d : deltas) EXPECT_TRUE(d == -1 || d == 0 || d == 1);
  }
}

TEST(MultiProbeSequence, ProbesAreDistinct) {
  std::vector<float> residuals{0.2f, 0.6f, 0.35f, 0.7f, 0.5f};
  MultiProbeSequence seq(residuals);
  std::set<std::vector<int8_t>> seen;
  std::vector<int8_t> deltas;
  int count = 0;
  while (count < 40 && seq.Next(&deltas)) {
    EXPECT_TRUE(seen.insert(deltas).second) << "duplicate probe";
    ++count;
  }
}

TEST(MultiProbeSequence, FirstTReturnsAtMostT) {
  std::vector<float> residuals{0.4f, 0.6f};
  MultiProbeSequence seq(residuals);
  const auto probes = seq.FirstT(100);
  // With m=2 there are only 3^2 - 1 = 8 non-zero valid perturbations.
  EXPECT_LE(probes.size(), 8u);
  EXPECT_GE(probes.size(), 4u);
}

TEST(PerturbedHash32, MatchesManualFold) {
  const int32_t floors[3] = {5, -2, 9};
  const int8_t deltas[3] = {1, 0, -1};
  const int32_t expect[3] = {6, -2, 8};
  EXPECT_EQ(PerturbedHash32(floors, deltas, 3), CompoundHash::Fold(expect, 3));
  const int8_t zero[3] = {0, 0, 0};
  EXPECT_EQ(PerturbedHash32(floors, zero, 3), CompoundHash::Fold(floors, 3));
}

// --- Integration with the in-memory index. ---

TEST(MultiProbeSearch, FindsAtLeastAsManyCandidates) {
  data::GeneratorSpec spec;
  spec.kind = data::GeneratorKind::kClustered;
  spec.dim = 32;
  spec.num_clusters = 20;
  spec.cluster_std = 3.0 / std::sqrt(64.0);
  spec.center_spread = 10.0 * std::sqrt(6.0 / 32.0);
  spec.seed = 5;
  auto gen = data::Generate("mp", 5000, 40, spec);
  lsh::E2lshConfig cfg;
  cfg.rho = 0.20;  // deliberately small L: multi-probe must compensate
  cfg.s_factor = 1000.0;
  cfg.x_max = gen.base.XMax();
  auto params = ComputeParams(gen.base.n(), gen.base.dim(), cfg);
  ASSERT_TRUE(params.ok());
  auto index = e2lsh::InMemoryE2lsh::Build(gen.base, *params);
  ASSERT_TRUE(index.ok());

  // Per query, multi-probe either gathers at least as many candidates or
  // terminates the radius ladder earlier (it found a satisfying answer
  // sooner) — both are the intended benefit.
  for (uint64_t q = 0; q < gen.queries.n(); ++q) {
    e2lsh::SearchStats plain, probed;
    (*index)->Search(gen.queries.Row(q), 1, &plain);
    (*index)->SearchMultiProbe(gen.queries.Row(q), 1, 8, &probed);
    EXPECT_TRUE(probed.candidates >= plain.candidates ||
                probed.radii_searched <= plain.radii_searched)
        << "query " << q;
    if (probed.radii_searched == plain.radii_searched) {
      EXPECT_GE(probed.buckets_probed, plain.buckets_probed);
    }
  }
}

TEST(MultiProbeSearch, ImprovesAccuracyAtSmallL) {
  data::GeneratorSpec spec;
  spec.kind = data::GeneratorKind::kClustered;
  spec.dim = 32;
  spec.num_clusters = 20;
  spec.cluster_std = 3.0 / std::sqrt(64.0);
  spec.center_spread = 10.0 * std::sqrt(6.0 / 32.0);
  spec.seed = 6;
  auto gen = data::Generate("mp2", 8000, 50, spec);
  const auto gt = data::GroundTruth::Compute(gen.base, gen.queries, 1, 1);
  lsh::E2lshConfig cfg;
  cfg.rho = 0.15;  // tiny index: L = 8000^0.15 ~ 4
  cfg.s_factor = 1000.0;
  cfg.x_max = gen.base.XMax();
  auto params = ComputeParams(gen.base.n(), gen.base.dim(), cfg);
  ASSERT_TRUE(params.ok());
  auto index = e2lsh::InMemoryE2lsh::Build(gen.base, *params);
  ASSERT_TRUE(index.ok());

  std::vector<std::vector<util::Neighbor>> plain(gen.queries.n()),
      probed(gen.queries.n());
  for (uint64_t q = 0; q < gen.queries.n(); ++q) {
    plain[q] = (*index)->Search(gen.queries.Row(q), 1);
    probed[q] = (*index)->SearchMultiProbe(gen.queries.Row(q), 1, 16);
  }
  const double r_plain = data::MeanOverallRatio(gt, plain, 1);
  const double r_probed = data::MeanOverallRatio(gt, probed, 1);
  EXPECT_LE(r_probed, r_plain + 1e-9);
}

TEST(MultiProbeSearch, ZeroProbesEqualsPlainSearch) {
  data::GeneratorSpec spec;
  spec.dim = 16;
  spec.seed = 7;
  auto gen = data::Generate("mp3", 2000, 20, spec);
  lsh::E2lshConfig cfg;
  cfg.rho = 0.25;
  cfg.s_factor = 1000.0;
  cfg.x_max = gen.base.XMax();
  auto params = ComputeParams(gen.base.n(), gen.base.dim(), cfg);
  ASSERT_TRUE(params.ok());
  auto index = e2lsh::InMemoryE2lsh::Build(gen.base, *params);
  ASSERT_TRUE(index.ok());
  for (uint64_t q = 0; q < gen.queries.n(); ++q) {
    const auto a = (*index)->Search(gen.queries.Row(q), 3);
    const auto b = (*index)->SearchMultiProbe(gen.queries.Row(q), 3, 0);
    ASSERT_EQ(a.size(), b.size());
    for (size_t i = 0; i < a.size(); ++i) EXPECT_EQ(a[i].id, b[i].id);
  }
}

}  // namespace
}  // namespace e2lshos::lsh
