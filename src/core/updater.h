// Online index maintenance (paper Sec. 7, "storage-specific issues"):
// object insertion and deletion on a live E2LSHoS index.
//
// * Insert: the new object is hashed under every (radius, l) compound
//   hash and appended to the corresponding bucket chain — in place when
//   the head block has room (one 512-B read-modify-write), else by
//   prepending a fresh head block (one block write + one table-entry
//   write). The paper notes "the impact of object insertion and deletion
//   is small" on device endurance; bytes_written tracks it exactly.
//   On a direct-I/O device every sub-alignment extent (the 8-byte table
//   entries, blocks smaller than the alignment unit) is staged through
//   an aligned read-modify-write window sized by io_alignment(), so the
//   updater works unchanged against file:?direct=1 / uring:?direct=1;
//   bytes_written then counts the whole windows actually written.
//
// * Remove: a DRAM tombstone. Bucket entries stay on storage (purging
//   them would rewrite whole chains — the "rebuild sparingly" advice);
//   the query engine skips tombstoned candidates after the fingerprint
//   check.
//
// Capacity rule: an inserted object's id must fit the id_bits chosen at
// build time (ids index the DRAM-resident dataset). When the id space is
// exhausted the index must be rebuilt.
#pragma once

#include "core/storage_index.h"
#include "data/dataset.h"

namespace e2lshos::core {

class IndexUpdater {
 public:
  /// The updater mutates `index` and writes through its device. Not
  /// thread-safe, and it mutates blocks and tables a concurrent reader
  /// would observe mid-write — it is an OFFLINE maintenance tool: run it
  /// only while no queries are in flight. For mutations concurrent with
  /// serving, use core::LiveUpdater (epoch-published copy-on-write;
  /// the e2lshos::Index Insert/Remove/Restore entry points), which
  /// reuses this updater's RMW-window and block-append mechanics behind
  /// a reader-safe publication protocol.
  explicit IndexUpdater(StorageIndex* index) : index_(index) {}

  /// Insert the object stored at `base.Row(id)`. `base` must be the same
  /// dataset the engine queries against, already holding the row.
  Status Insert(const data::Dataset& base, uint32_t id);

  /// Tombstone an object id; it will no longer be returned by queries.
  /// Removing an unknown id is a no-op (idempotent).
  Status Remove(uint32_t id);

  /// Un-tombstone (re-activate) an id previously removed. Restoring an
  /// id that was never removed (or never inserted) is a no-op.
  Status Restore(uint32_t id);

  /// Bytes written to storage by this updater (endurance accounting).
  uint64_t bytes_written() const { return bytes_written_; }
  uint64_t inserts() const { return inserts_; }

 private:
  StorageIndex* index_;
  uint64_t bytes_written_ = 0;
  uint64_t inserts_ = 0;
};

}  // namespace e2lshos::core
