#include "baselines/rtree.h"

#include <algorithm>
#include <cstring>
#include <limits>

#include "util/distance.h"

namespace e2lshos::baselines {

Result<RTree> RTree::Build(const float* points, uint64_t n, uint32_t dim,
                           uint32_t fanout) {
  if (n == 0) return Status::InvalidArgument("empty point set");
  if (dim == 0) return Status::InvalidArgument("dimension must be > 0");
  if (fanout < 2) return Status::InvalidArgument("fanout must be >= 2");
  RTree tree;
  tree.dim_ = dim;
  tree.fanout_ = fanout;
  tree.leaf_pts_.reserve(n * dim);
  tree.ids_.reserve(n);
  std::vector<uint32_t> order(n);
  for (uint64_t i = 0; i < n; ++i) order[i] = static_cast<uint32_t>(i);
  tree.root_ = tree.BuildRecursive(order, 0, n, 0, points);
  return tree;
}

uint32_t RTree::BuildRecursive(std::vector<uint32_t>& order, uint64_t begin,
                               uint64_t end, uint32_t level, const float* points) {
  const uint64_t count = end - begin;
  const uint32_t box_idx = static_cast<uint32_t>(boxes_.size());
  boxes_.resize(boxes_.size() + 2 * dim_);
  float* lo = boxes_.data() + box_idx;
  float* hi = lo + dim_;
  for (uint32_t j = 0; j < dim_; ++j) {
    lo[j] = std::numeric_limits<float>::infinity();
    hi[j] = -std::numeric_limits<float>::infinity();
  }

  if (count <= fanout_) {
    // Leaf: copy points into leaf order.
    Node node;
    node.leaf = true;
    node.first = static_cast<uint32_t>(ids_.size());
    node.count = static_cast<uint32_t>(count);
    node.box = box_idx;
    for (uint64_t i = begin; i < end; ++i) {
      const float* p = points + static_cast<uint64_t>(order[i]) * dim_;
      leaf_pts_.insert(leaf_pts_.end(), p, p + dim_);
      ids_.push_back(order[i]);
      for (uint32_t j = 0; j < dim_; ++j) {
        lo[j] = std::min(lo[j], p[j]);
        hi[j] = std::max(hi[j], p[j]);
      }
    }
    nodes_.push_back(node);
    return static_cast<uint32_t>(nodes_.size() - 1);
  }

  // Internal: sort along a cycling dimension and split into fanout chunks.
  const uint32_t split_dim = level % dim_;
  std::sort(order.begin() + begin, order.begin() + end,
            [&](uint32_t a, uint32_t b) {
              return points[static_cast<uint64_t>(a) * dim_ + split_dim] <
                     points[static_cast<uint64_t>(b) * dim_ + split_dim];
            });

  std::vector<uint32_t> child_nodes;
  const uint64_t chunk = (count + fanout_ - 1) / fanout_;
  for (uint64_t s = begin; s < end; s += chunk) {
    const uint64_t e = std::min(end, s + chunk);
    child_nodes.push_back(BuildRecursive(order, s, e, level + 1, points));
  }

  Node node;
  node.leaf = false;
  node.first = static_cast<uint32_t>(children_.size());
  node.count = static_cast<uint32_t>(child_nodes.size());
  node.box = box_idx;
  children_.insert(children_.end(), child_nodes.begin(), child_nodes.end());
  // Recompute lo/hi pointers: boxes_ may have been reallocated during
  // recursion.
  lo = boxes_.data() + box_idx;
  hi = lo + dim_;
  for (const uint32_t c : child_nodes) {
    const float* clo = boxes_.data() + nodes_[c].box;
    const float* chi = clo + dim_;
    for (uint32_t j = 0; j < dim_; ++j) {
      lo[j] = std::min(lo[j], clo[j]);
      hi[j] = std::max(hi[j], chi[j]);
    }
  }
  nodes_.push_back(node);
  return static_cast<uint32_t>(nodes_.size() - 1);
}

float RTree::MinDist2(uint32_t node, const float* q) const {
  const float* lo = boxes_.data() + nodes_[node].box;
  const float* hi = lo + dim_;
  float acc = 0.f;
  for (uint32_t j = 0; j < dim_; ++j) {
    float d = 0.f;
    if (q[j] < lo[j]) {
      d = lo[j] - q[j];
    } else if (q[j] > hi[j]) {
      d = q[j] - hi[j];
    }
    acc += d * d;
  }
  return acc;
}

uint64_t RTree::MemoryBytes() const {
  return nodes_.size() * sizeof(Node) + boxes_.size() * sizeof(float) +
         leaf_pts_.size() * sizeof(float) + ids_.size() * sizeof(uint32_t) +
         children_.size() * sizeof(uint32_t);
}

RTree::Iterator::Iterator(const RTree* tree, const float* q)
    : tree_(tree), q_(q, q + tree->dim_) {
  pq_.push({tree_->MinDist2(tree_->root_, q_.data()),
            static_cast<uint64_t>(tree_->root_) << 1});
}

bool RTree::Iterator::Next(uint32_t* id, float* dist2) {
  while (!pq_.empty()) {
    const Entry top = pq_.top();
    pq_.pop();
    if (top.code & 1) {
      // Leaf point: emit it.
      const uint32_t pos = static_cast<uint32_t>(top.code >> 1);
      *id = tree_->ids_[pos];
      *dist2 = top.dist2;
      return true;
    }
    const uint32_t node_idx = static_cast<uint32_t>(top.code >> 1);
    const Node& node = tree_->nodes_[node_idx];
    ++nodes_visited_;
    if (node.leaf) {
      for (uint32_t i = 0; i < node.count; ++i) {
        const uint32_t pos = node.first + i;
        const float* p = tree_->leaf_pts_.data() + static_cast<uint64_t>(pos) *
                                                       tree_->dim_;
        const float d2 = util::SquaredL2(p, q_.data(), tree_->dim_);
        pq_.push({d2, (static_cast<uint64_t>(pos) << 1) | 1});
      }
    } else {
      for (uint32_t i = 0; i < node.count; ++i) {
        const uint32_t child = tree_->children_[node.first + i];
        pq_.push({tree_->MinDist2(child, q_.data()),
                  static_cast<uint64_t>(child) << 1});
      }
    }
  }
  return false;
}

}  // namespace e2lshos::baselines
